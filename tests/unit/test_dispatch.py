"""Unit tests: the sharded work-unit dispatcher (repro.sim.dispatch).

Covers the wire codec (self-contained units, payload hashing), the
lease/retry broker semantics on both transports, and the reassembler's
acceptance contract: first-write-wins idempotency, stale/corrupt
rejection, and loud conflict detection.  A cheap module-level toy spec
keeps these tests millisecond-scale; the real-experiment differential
sweep lives in tests/property/test_dispatch_equivalence.py.
"""

import json

import numpy as np
import pytest

from repro.sim.dispatch import (
    ACCEPTED,
    CORRUPT,
    DUPLICATE,
    OUTVOTED,
    STALE,
    VOTE,
    DispatchError,
    IncompleteSweepError,
    MemoryBroker,
    PayloadConflictError,
    Reassembler,
    SpoolBroker,
    VirtualClock,
    WorkResult,
    WorkUnit,
    equivocate_result,
    execute_unit,
    payload_hash,
    sweep_fingerprint,
    units_for_request,
)
from repro.sim.sweep import SweepSpec, run_sweep


def toy_cell(rng, *, x, scale):
    # one draw per cell: deterministic in the coordinate-keyed stream
    return [[x, scale, f"{rng.random():.12f}"]]


def build_toy_spec(seed=0, fast=True, xs=(1, 2, 3), scale=2):
    return SweepSpec(
        experiment="TOY",
        title="toy sweep",
        headers=["x", "scale", "u"],
        cell=toy_cell,
        axes=(("x", tuple(xs)),),
        context=dict(scale=scale),
        seed=seed,
    )


TOY = {"TOY": build_toy_spec}


def toy_units(seed=0, overrides=None):
    return units_for_request("TOY", seed, True, overrides or {}, registry=TOY)


def executed(units, spec):
    return [execute_unit(u, spec=spec, worker="t") for u in units]


class TestWire:
    def test_unit_json_round_trip(self):
        spec, units = toy_units(overrides={"xs": (4, 5)})
        clone = WorkUnit.from_json(units[1].to_json())
        assert clone == WorkUnit(
            experiment="TOY", seed=0, fast=True, overrides={"xs": [4, 5]},
            index=1, n_cells=2, kernel="vectorized",
            fingerprint=units[0].fingerprint,
        )

    def test_result_json_round_trip(self):
        spec, units = toy_units()
        result = execute_unit(units[0], spec=spec, worker="w9")
        clone = WorkResult.from_json(result.to_json())
        assert clone == result

    def test_malformed_unit_raises(self):
        with pytest.raises(DispatchError, match="malformed"):
            WorkUnit.from_json('{"experiment": "TOY"}')
        with pytest.raises(DispatchError, match="malformed"):
            WorkResult.from_json("{not json")

    def test_unknown_experiment_raises(self):
        with pytest.raises(DispatchError, match="unknown experiment"):
            units_for_request("NOPE", 0, True, {}, registry=TOY)

    def test_index_outside_grid_raises(self):
        spec, units = toy_units()
        bad = WorkUnit(
            experiment="TOY", seed=0, fast=True, overrides={}, index=99,
            n_cells=3, fingerprint=units[0].fingerprint,
        )
        with pytest.raises(DispatchError, match="outside"):
            execute_unit(bad, spec=spec)

    def test_execution_is_deterministic(self):
        spec, units = toy_units()
        a = execute_unit(units[2], spec=spec)
        b = execute_unit(units[2], spec=spec)
        assert a.payload == b.payload
        assert a.payload_sha256 == b.payload_sha256

    def test_registry_rebuild_matches_spec_shortcut(self):
        # the worker-side rebuild from (experiment, seed, fast, overrides)
        # must reproduce exactly what the serve-side spec computes
        spec, units = toy_units(seed=7, overrides={"xs": [10, 11], "scale": 3})
        direct = execute_unit(units[0], spec=spec)
        rebuilt = execute_unit(units[0], registry=TOY)
        assert direct.payload == rebuilt.payload

    def test_payload_hash_detects_any_change(self):
        payload = {"rows": [[1, 2, "a"]], "notes": [], "aux": None}
        h = payload_hash(payload)
        assert payload_hash({**payload, "aux": 0}) != h
        assert payload_hash({"rows": [[1, 2, "b"]], "notes": [], "aux": None}) != h
        # key order is canonicalized away
        assert payload_hash(dict(reversed(list(payload.items())))) == h

    def test_fingerprint_tracks_request_not_kernel(self):
        base = sweep_fingerprint("TOY", 0, True, {})
        assert sweep_fingerprint("TOY", 1, True, {}) != base
        assert sweep_fingerprint("TOY", 0, False, {}) != base
        assert sweep_fingerprint("TOY", 0, True, {"xs": [1]}) != base
        # kernel choice never changes a table, so it is not identity
        _, units_v = toy_units()
        spec, units_s = units_for_request("TOY", 0, True, {}, kernel="serial", registry=TOY)
        assert units_v[0].fingerprint == units_s[0].fingerprint

    def test_non_jsonable_payload_raises_clearly(self):
        def opaque_cell(rng, *, x, scale):
            return [[object()]]

        spec = SweepSpec(
            experiment="TOY", title="t", headers=["h"], cell=opaque_cell,
            axes=(("x", (1,)),), context=dict(scale=1),
        )
        unit = WorkUnit(
            experiment="TOY", seed=0, fast=True, overrides={}, index=0,
            n_cells=1, fingerprint="",  # no identity claim to verify
        )
        with pytest.raises(TypeError, match="JSON-serializable"):
            execute_unit(unit, spec=spec)

    def test_worker_refuses_foreign_fingerprint(self):
        # a unit whose fingerprint does not re-derive locally means the
        # worker runs different repro code than the serve side — it must
        # refuse, not stamp wrong-version rows with a passing identity
        spec, units = toy_units()
        from dataclasses import replace

        drifted = replace(units[0], fingerprint="0" * 20)
        with pytest.raises(DispatchError, match="differs"):
            execute_unit(drifted, spec=spec)


class TestReassembler:
    def _fresh(self, **kw):
        spec, units = toy_units(**kw)
        return spec, units, Reassembler(spec, units[0].fingerprint)

    def test_accept_assemble_matches_run_sweep(self):
        spec, units, reasm = self._fresh()
        for r in executed(units, spec):
            assert reasm.accept(r) == ACCEPTED
        assert reasm.complete() and reasm.missing() == []
        assert reasm.table().to_json() == run_sweep(spec).to_json()

    def test_duplicate_is_idempotent(self):
        spec, units, reasm = self._fresh()
        result = execute_unit(units[0], spec=spec)
        assert reasm.accept(result) == ACCEPTED
        assert reasm.accept(result) == DUPLICATE
        assert reasm.accepted_count() == 1

    def test_stale_fingerprint_rejected(self):
        spec, units, reasm = self._fresh()
        result = execute_unit(units[0], spec=spec)
        stale = WorkResult(
            fingerprint="0" * 20, index=result.index,
            payload=result.payload, payload_sha256=result.payload_sha256,
        )
        assert reasm.accept(stale) == STALE
        assert reasm.accepted_count() == 0
        assert reasm.rejected[0][0] == STALE

    def test_out_of_grid_index_rejected_as_stale(self):
        spec, units, reasm = self._fresh()
        result = execute_unit(units[0], spec=spec)
        rogue = WorkResult(
            fingerprint=units[0].fingerprint, index=42,
            payload=result.payload, payload_sha256=result.payload_sha256,
        )
        assert reasm.accept(rogue) == STALE

    def test_corrupt_payload_rejected(self):
        spec, units, reasm = self._fresh()
        result = execute_unit(units[0], spec=spec)
        tampered = WorkResult(
            fingerprint=result.fingerprint, index=result.index,
            payload={**result.payload, "rows": [["tampered"]]},
            payload_sha256=result.payload_sha256,  # stale claim
        )
        assert reasm.accept(tampered) == CORRUPT
        # the honest result still lands afterwards
        assert reasm.accept(result) == ACCEPTED

    def test_verified_divergent_duplicate_is_a_conflict(self):
        spec, units, reasm = self._fresh()
        result = execute_unit(units[0], spec=spec)
        assert reasm.accept(result) == ACCEPTED
        wrong_payload = {**result.payload, "rows": [["wrong", 0, "answer"]]}
        liar = WorkResult(
            fingerprint=result.fingerprint, index=result.index,
            payload=wrong_payload,
            payload_sha256=payload_hash(wrong_payload),  # self-consistent
            worker="byzantine",
        )
        with pytest.raises(PayloadConflictError, match="byzantine"):
            reasm.accept(liar)

    def test_incomplete_table_raises_with_missing_indexes(self):
        spec, units, reasm = self._fresh()
        reasm.accept(execute_unit(units[1], spec=spec))
        with pytest.raises(IncompleteSweepError, match=r"\[0, 2\]"):
            reasm.table()


class TestMemoryBroker:
    def _broker(self, clock=None, **kw):
        spec, units = toy_units()
        return spec, units, MemoryBroker(
            spec, units, lease_timeout=10.0,
            clock=clock.now if clock else None, **kw,
        )

    def test_lease_until_exhausted(self):
        spec, units, broker = self._broker()
        seen = {broker.lease("w").index for _ in units}
        assert seen == {0, 1, 2}
        assert broker.lease("w") is None  # all leased, none expired
        assert broker.outstanding() == 3

    def test_expired_lease_requeues_and_counts_attempts(self):
        clock = VirtualClock()
        spec, units, broker = self._broker(clock=clock)
        first = broker.lease("doomed")
        assert broker.attempts(first.index) == 1
        clock.advance(11.0)  # past the 10s lease
        again = broker.lease("saviour")
        assert again.index == first.index  # FIFO: the expired unit first
        assert broker.attempts(first.index) == 2

    def test_rejected_completion_requeues_immediately(self):
        spec, units, broker = self._broker()
        unit = broker.lease("w")
        result = execute_unit(unit, spec=spec)
        bad = WorkResult(
            fingerprint=result.fingerprint, index=result.index,
            payload={**result.payload, "rows": [["x"]]},
            payload_sha256=result.payload_sha256,
        )
        assert broker.complete(bad) == CORRUPT
        # no clock movement needed: the unit is claimable right now
        assert broker.lease("w2").index == unit.index

    def test_late_duplicate_after_retry_is_idempotent(self):
        clock = VirtualClock()
        spec, units, broker = self._broker(clock=clock)
        unit = broker.lease("stalled")
        clock.advance(11.0)
        retry = broker.lease("fresh")
        assert retry.index == unit.index
        result = execute_unit(retry, spec=spec)
        assert broker.complete(result) == ACCEPTED
        # the stalled worker finally reports the same deterministic payload
        assert broker.complete(execute_unit(unit, spec=spec)) == DUPLICATE

    def test_completes_to_oracle_table(self):
        spec, units, broker = self._broker()
        while not broker.is_complete():
            unit = broker.lease("w")
            broker.complete(execute_unit(unit, spec=spec))
        assert broker.table().to_json() == run_sweep(spec).to_json()

    def test_max_attempts_bounds_poisoned_units(self):
        clock = VirtualClock()
        spec, units = toy_units()
        broker = MemoryBroker(
            spec, units, lease_timeout=1.0, clock=clock.now, max_attempts=2
        )
        for _ in range(2):
            assert broker.lease("crashloop") is not None
            clock.advance(2.0)
        with pytest.raises(DispatchError, match="max_attempts"):
            broker.lease("crashloop")

    def test_mixed_fingerprints_refused(self):
        spec, units = toy_units()
        alien = WorkUnit(
            experiment="TOY", seed=9, fast=True, overrides={}, index=0,
            n_cells=1, fingerprint="another-sweep",
        )
        with pytest.raises(DispatchError, match="one sweep"):
            MemoryBroker(spec, units + [alien])

    def test_bad_lease_timeout_rejected(self):
        spec, units = toy_units()
        with pytest.raises(ValueError):
            MemoryBroker(spec, units, lease_timeout=0.0)


class TestSpoolBroker:
    def _spool(self, tmp_path, clock=None, lease_timeout=10.0):
        spec, units = toy_units()
        broker = SpoolBroker(tmp_path / "spool", clock=clock.now if clock else None)
        broker.initialize(
            {
                "experiment": "TOY", "seed": 0, "fast": True, "overrides": {},
                "kernel": "vectorized", "fingerprint": units[0].fingerprint,
                "n_cells": len(units), "lease_timeout": lease_timeout,
            },
            units,
        )
        return spec, units, broker

    def test_initialize_and_claim(self, tmp_path):
        spec, units, broker = self._spool(tmp_path)
        assert broker.counts() == {"pending": 3, "leased": 0, "results": 0}
        unit = broker.lease("w")
        assert unit.index == 0  # lowest index first
        assert broker.counts() == {"pending": 2, "leased": 1, "results": 0}

    def test_two_brokers_cannot_claim_the_same_unit(self, tmp_path):
        spec, units, broker_a = self._spool(tmp_path)
        broker_b = SpoolBroker(broker_a.root, clock=broker_a.clock)
        claimed = [broker_a.lease("a"), broker_b.lease("b"), broker_a.lease("a"),
                   broker_b.lease("b")]
        indexes = [u.index for u in claimed if u is not None]
        assert sorted(indexes) == [0, 1, 2]  # every unit claimed exactly once
        assert broker_a.lease("a") is None

    def test_expired_lease_requeued_by_any_participant(self, tmp_path):
        clock = VirtualClock()
        spec, units, broker = self._spool(tmp_path, clock=clock)
        broker.lease("doomed")
        clock.advance(11.0)
        other = SpoolBroker(broker.root, clock=clock.now)
        assert other.requeue_expired() == [0]
        assert other.counts()["pending"] == 3

    def test_complete_first_write_wins(self, tmp_path):
        spec, units, broker = self._spool(tmp_path)
        unit = broker.lease("w")
        result = execute_unit(unit, spec=spec, worker="w")
        assert broker.complete(result) == ACCEPTED
        impostor = WorkResult(
            fingerprint=result.fingerprint, index=result.index,
            payload={"rows": [["late"]], "notes": [], "aux": None},
            payload_sha256="feed", worker="late",
        )
        assert broker.complete(impostor) == DUPLICATE
        kept = WorkResult.from_json(broker._result_path(unit.index).read_text())
        assert kept.payload == result.payload  # the first write survived

    def test_collect_rejects_and_requeues_corrupt_result(self, tmp_path):
        spec, units, broker = self._spool(tmp_path)
        unit = broker.lease("w")
        result = execute_unit(unit, spec=spec)
        broker.complete(result)
        # torn write: truncate the result file mid-JSON
        path = broker._result_path(unit.index)
        path.write_text(result.to_json()[: len(result.to_json()) // 2])
        reasm = Reassembler(spec, units[0].fingerprint)
        counts = broker.sweep_results(reasm)
        assert counts[CORRUPT] == 1
        assert not path.exists()
        # the unit is claimable again, from its immutable original
        assert broker.counts()["pending"] == 3

    def test_collect_rejects_stale_result(self, tmp_path):
        spec, units, broker = self._spool(tmp_path)
        unit = broker.lease("w")
        result = execute_unit(unit, spec=spec)
        stale = WorkResult(
            fingerprint="0" * 20, index=result.index,
            payload=result.payload, payload_sha256=result.payload_sha256,
        )
        broker.complete(stale)
        reasm = Reassembler(spec, units[0].fingerprint)
        counts = broker.sweep_results(reasm)
        assert counts[STALE] == 1
        assert broker.counts()["pending"] == 3

    def test_reserve_is_idempotent_for_completed_shards(self, tmp_path):
        spec, units, broker = self._spool(tmp_path)
        unit = broker.lease("w")
        broker.complete(execute_unit(unit, spec=spec))
        manifest = broker.load_manifest()
        enqueued = broker.initialize(manifest, units)
        assert enqueued == 0  # 2 still pending, 1 completed: nothing re-added
        assert broker.counts() == {"pending": 2, "leased": 0, "results": 1}

    def test_different_fingerprint_needs_force(self, tmp_path):
        spec, units, broker = self._spool(tmp_path)
        manifest = broker.load_manifest()
        alien = dict(manifest, fingerprint="different-generation")
        with pytest.raises(DispatchError, match="force"):
            broker.initialize(alien, units)
        enqueued = broker.initialize(alien, units, force=True)
        assert enqueued == 3  # wiped and re-enqueued under the new identity

    def test_force_wipes_completed_shards(self, tmp_path):
        spec, units, broker = self._spool(tmp_path)
        broker.complete(execute_unit(broker.lease("w"), spec=spec))
        manifest = broker.load_manifest()
        enqueued = broker.initialize(manifest, units, force=True)
        assert enqueued == 3
        assert broker.counts() == {"pending": 3, "leased": 0, "results": 0}

    def test_missing_manifest_is_a_clear_error(self, tmp_path):
        with pytest.raises(DispatchError, match="manifest"):
            SpoolBroker(tmp_path / "nowhere").load_manifest()

    def test_json_table_round_trip(self, tmp_path):
        spec, units, broker = self._spool(tmp_path)
        table = run_sweep(spec)
        broker.store_table(table.to_json())
        assert broker.load_table() == table.to_json()
        assert json.loads(broker.load_table())["experiment"] == "TOY"


class TestForeignSpoolInput:
    def test_out_of_grid_result_file_is_dropped_not_fatal(self, tmp_path):
        # a result file for an index the grid does not have (copied from
        # another spool, or a leftover) is Byzantine input: it must be
        # rejected and deleted, never crash the sweep with a requeue of a
        # unit that does not exist
        spec, units = units_for_request("TOY", 0, True, {}, registry=TOY)
        broker = SpoolBroker(tmp_path / "spool")
        broker.initialize(
            {
                "experiment": "TOY", "seed": 0, "fast": True, "overrides": {},
                "kernel": "vectorized", "fingerprint": units[0].fingerprint,
                "n_cells": len(units), "lease_timeout": 10.0,
            },
            units,
        )
        real = execute_unit(units[0], spec=spec)
        foreign_payload = dict(real.payload)
        foreign = WorkResult(
            fingerprint=units[0].fingerprint, index=7,
            payload=foreign_payload,
            payload_sha256=payload_hash(foreign_payload),
        )
        path = broker._result_path(7)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(foreign.to_json())
        reasm = Reassembler(spec, units[0].fingerprint)
        counts = broker.sweep_results(reasm)  # must not raise
        assert counts[STALE] == 1
        assert not path.exists()
        assert broker.counts()["pending"] == len(units)  # nothing phantom-requeued


class TestBrokerTelemetry:
    """Both transports emit the same typed lifecycle records."""

    def test_memory_broker_lifecycle_events(self):
        from repro.telemetry import TelemetryBuffer

        clock = VirtualClock()
        spec, units = toy_units()
        telemetry = TelemetryBuffer(clock=clock.now)
        broker = MemoryBroker(
            spec, units, lease_timeout=10.0, clock=clock.now,
            telemetry=telemetry,
        )
        unit = broker.lease("wA")
        clock.advance(2.5)
        broker.complete(execute_unit(unit, spec=spec, worker="wA"))
        (lease,) = telemetry.of_type("dispatch.lease")
        assert lease["index"] == unit.index and lease["worker"] == "wA"
        assert lease["attempt"] == 1
        assert lease["fingerprint"] == unit.fingerprint
        (complete,) = telemetry.of_type("dispatch.complete")
        assert complete["verdict"] == "accepted"
        assert complete["lease_latency_s"] == pytest.approx(2.5)

    def test_memory_broker_expiry_and_rejection_events(self):
        from repro.sim.dispatch.chaos import corrupt_result
        from repro.telemetry import TelemetryBuffer

        clock = VirtualClock()
        spec, units = toy_units()
        telemetry = TelemetryBuffer(clock=clock.now)
        broker = MemoryBroker(
            spec, units, lease_timeout=10.0, clock=clock.now,
            telemetry=telemetry,
        )
        doomed = broker.lease("doomed")
        clock.advance(11.0)
        broker.requeue_expired()
        (requeue,) = telemetry.of_type("dispatch.requeue")
        assert requeue["index"] == doomed.index
        assert requeue["reason"] == "lease_expired"
        unit = broker.lease("liar")
        broker.complete(corrupt_result(execute_unit(unit, spec=spec, worker="liar")))
        (reject,) = telemetry.of_type("dispatch.reject")
        assert reject["verdict"] == "corrupt"
        assert telemetry.of_type("dispatch.requeue")[-1]["reason"] == "corrupt"

    def test_memory_broker_without_telemetry_still_works(self):
        spec, units = toy_units()
        broker = MemoryBroker(spec, units, lease_timeout=10.0)
        unit = broker.lease("w")
        assert broker.complete(execute_unit(unit, spec=spec, worker="w")) == "accepted"

    def test_spool_events_log_is_strict_jsonl(self, tmp_path):
        from repro.telemetry import read_events

        spec, units = toy_units()
        broker = SpoolBroker(tmp_path / "spool")
        broker.initialize(
            {
                "experiment": "TOY", "seed": 0, "fast": True, "overrides": {},
                "kernel": "vectorized", "fingerprint": units[0].fingerprint,
                "n_cells": len(units), "lease_timeout": 10.0,
            },
            units,
        )
        for _ in units:
            unit = broker.lease("w")
            broker.complete(execute_unit(unit, spec=spec, worker="w"))
        events = read_events(tmp_path / "spool" / "events.log", strict=True)
        types = [e["type"] for e in events]
        assert types.count("dispatch.serve") == 1
        assert types.count("dispatch.lease") == len(units)
        assert types.count("dispatch.complete") == len(units)
        completes = [e for e in events if e["type"] == "dispatch.complete"]
        assert all(e["verdict"] == "accepted" for e in completes)
        assert all("lease_latency_s" in e for e in completes)


class TestQuorumReassembler:
    """Quorum mode: verified results are votes, majority hash settles."""

    def _fresh(self, replicas=3, emit=None, **kw):
        spec, units = toy_units(**kw)
        return spec, units, Reassembler(
            spec, units[0].fingerprint, replicas=replicas, emit=emit
        )

    def test_replicas_must_be_positive(self):
        spec, units = toy_units()
        with pytest.raises(ValueError, match="replicas"):
            Reassembler(spec, units[0].fingerprint, replicas=0)

    def test_majority_of_distinct_workers_settles(self):
        spec, units, reasm = self._fresh()
        a = execute_unit(units[0], spec=spec, worker="w1")
        b = execute_unit(units[0], spec=spec, worker="w2")
        assert reasm.accept(a) == VOTE
        assert not reasm.is_accepted(0)
        assert reasm.accept(b) == ACCEPTED  # 2 of 3 = majority
        assert reasm.is_accepted(0)

    def test_one_worker_counts_once_across_replica_slots(self):
        from dataclasses import replace

        spec, units, reasm = self._fresh()
        a = execute_unit(units[0], spec=spec, worker="w1")
        assert reasm.accept(a) == VOTE
        assert reasm.accept(a) == DUPLICATE  # literal resubmission
        # the same worker completing a *different* replica slot of the
        # same index is still one voter — a quorum needs distinct workers
        assert reasm.accept(replace(a, replica=1)) == DUPLICATE
        assert reasm.vote_counts(0) == {a.payload_sha256: 1}
        assert reasm.voters(0) == {"w1"}

    def test_equivocating_worker_latest_vote_stands(self):
        spec, units, reasm = self._fresh()
        honest = execute_unit(units[0], spec=spec, worker="liar")
        lie = equivocate_result(honest, salt="x")
        assert reasm.accept(lie) == VOTE
        # the same worker now swears to a different hash: observed
        # equivocation — latest vote stands, suspicion grows
        assert reasm.accept(honest) == VOTE
        assert reasm.suspicion["liar"] == 1
        assert reasm.vote_counts(0) == {honest.payload_sha256: 1}
        other = execute_unit(units[0], spec=spec, worker="w2")
        assert reasm.accept(other) == ACCEPTED

    def test_minority_is_outvoted_not_fatal(self):
        spec, units, reasm = self._fresh()
        lie = equivocate_result(
            execute_unit(units[0], spec=spec, worker="liar"), salt="liar"
        )
        assert reasm.accept(lie) == VOTE
        assert reasm.accept(execute_unit(units[0], spec=spec, worker="w1")) == VOTE
        assert reasm.accept(execute_unit(units[0], spec=spec, worker="w2")) == ACCEPTED
        assert reasm.suspicion["liar"] == 1  # outvoted at settle time
        # a late minority report against the settled index: survivable,
        # never the PayloadConflictError the r=1 path raises
        late = equivocate_result(
            execute_unit(units[0], spec=spec, worker="late"), salt="late"
        )
        assert reasm.accept(late) == OUTVOTED
        assert reasm.suspicion["late"] == 1
        for u in units[1:]:
            reasm.accept(execute_unit(u, spec=spec, worker="w1"))
            reasm.accept(execute_unit(u, spec=spec, worker="w2"))
        assert reasm.table().to_json() == run_sweep(spec).to_json()

    def test_quorum_telemetry_trail(self):
        events = []
        spec, units, reasm = self._fresh(
            emit=lambda type, **f: events.append({"type": type, **f})
        )
        lie = equivocate_result(
            execute_unit(units[0], spec=spec, worker="liar"), salt="liar"
        )
        reasm.accept(lie)
        reasm.accept(execute_unit(units[0], spec=spec, worker="w1"))
        reasm.accept(execute_unit(units[0], spec=spec, worker="w2"))
        quorum = [e for e in events if e["type"] == "dispatch.quorum"]
        assert [e["outcome"] for e in quorum] == ["vote", "vote", "settled"]
        assert sum(quorum[-1]["votes"].values()) == 3  # per-hash counts
        suspects = [e for e in events if e["type"] == "dispatch.suspect"]
        assert suspects == [{"type": "dispatch.suspect", "worker": "liar",
                             "suspicion": 1}]


class TestMemoryQuorum:
    def test_replica_slots_lease_with_liveness_fallback(self):
        spec, units = toy_units()
        broker = MemoryBroker(spec, units, lease_timeout=10.0, replicas=3)
        # 3 units x 3 replicas; a lone worker still drains every slot
        # (prefer-distinct never refuses outright)
        seen = [broker.lease("solo") for _ in range(9)]
        assert all(u is not None for u in seen)
        assert broker.lease("solo") is None

    def test_three_honest_workers_settle_to_oracle(self):
        spec, units = toy_units()
        broker = MemoryBroker(spec, units, lease_timeout=10.0, replicas=3)
        while not broker.is_complete():
            progressed = False
            for w in ("w1", "w2", "w3"):
                unit = broker.lease(w)
                if unit is not None:
                    broker.complete(execute_unit(unit, spec=spec, worker=w))
                    progressed = True
            assert progressed, "quorum drain stalled"
        assert broker.table().to_json() == run_sweep(spec).to_json()

    def test_tiebreaker_slot_materialized_when_tally_stalls(self):
        spec, units = toy_units(overrides={"xs": [5]})  # one-cell grid
        broker = MemoryBroker(spec, units, lease_timeout=10.0, replicas=3)
        u1 = broker.lease("liarA")
        broker.complete(equivocate_result(
            execute_unit(u1, spec=spec, worker="liarA"), salt="A"))
        u2 = broker.lease("liarB")
        broker.complete(equivocate_result(
            execute_unit(u2, spec=spec, worker="liarB"), salt="B"))
        u3 = broker.lease("w")
        broker.complete(execute_unit(u3, spec=spec, worker="w"))
        # 1/1/1 with the slots drained: unsettled, tiebreaker staged
        assert not broker.is_complete()
        tie = broker.lease("liarA")
        assert tie is not None and tie.replica >= 3
        # liarA comes clean: its vote flips to the honest hash (2 of 3)
        broker.complete(execute_unit(tie, spec=spec, worker="liarA"))
        assert broker.is_complete()
        assert broker.table().to_json() == run_sweep(spec).to_json()
        assert broker.reassembler.suspicion["liarA"] == 1  # the flip
        assert broker.reassembler.suspicion["liarB"] == 1  # outvoted

    def test_replicas_must_be_positive(self):
        spec, units = toy_units()
        with pytest.raises(ValueError, match="replicas"):
            MemoryBroker(spec, units, replicas=0)


class TestSpoolQuorum:
    def _spool(self, tmp_path, replicas=3, clock=None, max_attempts=None,
               lease_timeout=10.0):
        spec, units = toy_units()
        broker = SpoolBroker(tmp_path / "spool",
                             clock=clock.now if clock else None)
        broker.initialize(
            {
                "experiment": "TOY", "seed": 0, "fast": True, "overrides": {},
                "kernel": "vectorized", "fingerprint": units[0].fingerprint,
                "n_cells": len(units), "lease_timeout": lease_timeout,
                "replicas": replicas, "max_attempts": max_attempts,
            },
            units,
        )
        return spec, units, broker

    def test_slot_name_round_trip(self):
        for index, replica, attempt in [
            (0, 0, 0), (42, 1, 0), (7, 0, 3), (99999, 12, 34),
        ]:
            name = SpoolBroker._slot_name(index, replica, attempt)
            assert SpoolBroker._parse_slot(name) == (index, replica, attempt)
        # replica 0 / first lease keep the bare pre-quorum name
        assert SpoolBroker._slot_name(42) == "unit-00042.json"
        assert SpoolBroker._parse_slot("unit-00042.json") == (42, 0, 0)

    def test_result_name_round_trip(self, tmp_path):
        broker = SpoolBroker(tmp_path / "s")
        assert broker._result_path(3).name == "result-00003.json"
        assert broker._result_path(3, 2).name == "result-00003.r2.json"
        assert SpoolBroker._parse_result("result-00003.json") == (3, 0)
        assert SpoolBroker._parse_result("result-00003.r2.json") == (3, 2)

    def test_replica_slots_on_disk(self, tmp_path):
        spec, units, broker = self._spool(tmp_path)
        assert broker.counts() == {"pending": 9, "leased": 0, "results": 0}
        names = {p.name for p in (broker.root / "pending").iterdir()}
        assert "unit-00000.json" in names  # replica 0: bare legacy name
        assert "unit-00000.r1.json" in names
        assert "unit-00000.r2.json" in names

    def test_reserve_only_fills_missing_replica_slots(self, tmp_path):
        spec, units, broker = self._spool(tmp_path)
        unit = broker.lease("w")
        broker.complete(execute_unit(unit, spec=spec, worker="w"))
        enqueued = broker.initialize(broker.load_manifest(), units)
        assert enqueued == 0  # 8 live slots + 1 result: nothing re-added

    def test_quorum_settles_through_the_spool(self, tmp_path):
        spec, units, broker = self._spool(tmp_path)
        brokers = {w: SpoolBroker(broker.root) for w in ("w1", "w2", "w3")}
        reasm = Reassembler(spec, units[0].fingerprint, replicas=3)
        for _ in range(30):
            for w, b in brokers.items():
                unit = b.lease(w)
                if unit is not None:
                    b.complete(execute_unit(unit, spec=spec, worker=w))
            broker.sweep_results(reasm)
            if reasm.complete():
                break
        assert reasm.complete()
        assert reasm.table().to_json() == run_sweep(spec).to_json()

    def test_legacy_r1_spool_still_collects(self, tmp_path):
        # a spool served before quorum mode existed: bare slot names and a
        # manifest with no replicas/max_attempts keys must still collect
        spec, units = toy_units()
        broker = SpoolBroker(tmp_path / "spool")
        broker.initialize(
            {
                "experiment": "TOY", "seed": 0, "fast": True, "overrides": {},
                "kernel": "vectorized", "fingerprint": units[0].fingerprint,
                "n_cells": len(units), "lease_timeout": 10.0,
            },
            units,
        )
        for _ in units:
            broker.complete(execute_unit(broker.lease("w"), spec=spec, worker="w"))
        from repro.sim.dispatch import collect

        table = collect(broker.root, registry=TOY)
        assert table.to_json() == run_sweep(spec).to_json()

    def test_spool_tiebreaker_materialized_when_tally_stalls(self, tmp_path):
        spec, units, broker = self._spool(tmp_path)
        reasm = Reassembler(spec, units[0].fingerprint, replicas=3,
                            emit=broker.emit)
        # drain every replica slot of index 0 into a 1/1/1 tally
        leased = []
        while True:
            unit = broker.lease("any")
            if unit is None:
                break
            leased.append(unit)
        for unit, (worker, salt) in zip(
            [u for u in leased if u.index == 0],
            [("liarA", "A"), ("liarB", "B"), ("w", None)],
        ):
            result = execute_unit(unit, spec=spec, worker=worker)
            if salt:
                result = equivocate_result(result, salt=salt)
            broker.complete(result)
        broker.sweep_results(reasm)
        assert not reasm.is_accepted(0)
        pending = {
            SpoolBroker._parse_slot(p.name)[:2]
            for p in (broker.root / "pending").iterdir()
        }
        assert (0, 3) in pending  # the tiebreaker slot, above every replica
        from repro.telemetry import read_events

        quorum = [
            e for e in read_events(broker.root / "events.log")
            if e["type"] == "dispatch.quorum"
        ]
        assert any(e["outcome"] == "tie" and e["index"] == 0 for e in quorum)


class TestSpoolRetryBugs:
    """Regressions for the three spool broker bugs this PR fixes."""

    def _spool(self, tmp_path, clock, max_attempts=None, lease_timeout=10.0):
        spec, units = toy_units()
        broker = SpoolBroker(tmp_path / "spool", clock=clock.now)
        broker.initialize(
            {
                "experiment": "TOY", "seed": 0, "fast": True, "overrides": {},
                "kernel": "vectorized", "fingerprint": units[0].fingerprint,
                "n_cells": len(units), "lease_timeout": lease_timeout,
                "replicas": 1, "max_attempts": max_attempts,
            },
            units,
        )
        return spec, units, broker

    def test_expiry_honours_max_attempts(self, tmp_path):
        # bug 1: the spool used to requeue a crash-looping unit forever,
        # ignoring the manifest's max_attempts entirely
        clock = VirtualClock()
        spec, units, broker = self._spool(tmp_path, clock, max_attempts=2)
        first = broker.lease("crashloop")
        clock.advance(11.0)
        assert broker.requeue_expired() == [first.index]
        again = broker.lease("crashloop")
        assert again.index == first.index and again.attempt == 1
        clock.advance(11.0)
        # a second expiry would grant lease #3 > max_attempts=2: poisoned
        assert broker.requeue_expired() == []
        marker = broker.root / "poison" / "unit-00000.a2.json"
        assert marker.exists()
        assert broker.counts() == {"pending": 2, "leased": 0, "results": 0}
        from repro.telemetry import read_events

        poison = [
            e for e in read_events(broker.root / "events.log")
            if e["type"] == "dispatch.poison"
        ]
        assert len(poison) == 1
        assert poison[0]["index"] == 0 and poison[0]["attempts"] == 2

    def test_rejection_requeue_honours_max_attempts(self, tmp_path):
        # bug 1, collect side: a persistently-corrupt result must run out
        # of retries too, not only an expiring lease
        clock = VirtualClock()
        spec, units, broker = self._spool(tmp_path, clock, max_attempts=1)
        unit = broker.lease("liar")
        result = execute_unit(unit, spec=spec, worker="liar")
        broker.complete(WorkResult(
            fingerprint=result.fingerprint, index=result.index,
            payload={**result.payload, "rows": [["x"]]},
            payload_sha256=result.payload_sha256, worker="liar",
        ))
        reasm = Reassembler(spec, units[0].fingerprint)
        counts = broker.sweep_results(reasm)
        assert counts[CORRUPT] == 1
        # budget of 1 already spent: poisoned, not re-staged
        assert broker.counts()["pending"] == 2
        assert (broker.root / "poison" / "unit-00000.a1.json").exists()

    def test_expired_lease_with_result_is_not_requeued(self, tmp_path):
        # bug 2: a worker that died between linking its result and
        # unlinking its lease used to get its settled work re-executed
        clock = VirtualClock()
        spec, units, broker = self._spool(tmp_path, clock)
        unit = broker.lease("w")
        result = execute_unit(unit, spec=spec, worker="w")
        # simulate the mid-complete death: result on disk, lease dangling
        broker._result_path(unit.index).write_text(result.to_json())
        clock.advance(11.0)
        assert broker.requeue_expired() == []
        assert broker.counts() == {"pending": 2, "leased": 0, "results": 1}
        reasm = Reassembler(spec, units[0].fingerprint)
        assert broker.sweep_results(reasm)[ACCEPTED] == 1

    def test_utime_failure_falls_back_to_recorded_lease_start(
        self, tmp_path, monkeypatch
    ):
        # bug 3: when utime failed at claim time, the slot mtime stayed at
        # wall-clock rename time while expiry compared it to the injected
        # clock — the lease could never expire (or expired instantly)
        import os as _os

        clock = VirtualClock(start=5_000.0)
        spec, units, broker = self._spool(tmp_path, clock)

        def broken_utime(*args, **kwargs):
            raise OSError("utime not supported here")

        monkeypatch.setattr(_os, "utime", broken_utime)
        unit = broker.lease("w")
        slot = broker.root / "leased" / SpoolBroker._slot_name(unit.index)
        data = json.loads(slot.read_text())
        assert data["lease_start"] == 5_000.0  # recorded inside the slot
        assert broker._lease_start(slot) == 5_000.0  # preferred over mtime
        monkeypatch.undo()
        clock.advance(9.0)
        assert broker.requeue_expired() == []  # not expired yet on our clock
        clock.advance(2.0)
        assert broker.requeue_expired() == [unit.index]


class TestPoisonAntiLivelock:
    def test_persistent_corruptor_cannot_livelock_work(self, tmp_path):
        # regression: before max_attempts reached the spool, a worker
        # whose every completion is corrupt would requeue-loop forever
        from repro.sim.dispatch import serve, work
        from repro.sim.dispatch.chaos import corrupt_result

        class AlwaysCorrupt:
            def apply(self, unit, result, broker):
                broker.complete(corrupt_result(result))
                return None

        report = serve(
            "TOY", spool=tmp_path / "spool", registry=TOY,
            lease_timeout=5.0, max_attempts=2,
        )
        with pytest.raises(DispatchError, match="wedged"):
            work(report.spool, worker="liar", chaos=AlwaysCorrupt(),
                 registry=TOY, poll=0.0)
        from repro.telemetry import read_events

        events = read_events(tmp_path / "spool" / "events.log")
        poisoned = {
            e["index"] for e in events if e["type"] == "dispatch.poison"
        }
        assert poisoned == {0, 1, 2}  # every unit retired loudly
