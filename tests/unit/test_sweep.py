"""Unit tests: declarative sweep substrate (repro.sim.sweep).

The load-bearing contracts: the grid enumerates in deterministic order,
every cell gets an independent stream keyed by its coordinates (never by
the execution schedule), and the assembled table is bit-identical across
backends and worker counts.  Cell functions live at module level so they
pickle under the ``spawn`` start method.
"""

import numpy as np
import pytest

from repro.sim import (
    CellOut,
    ExecutionConfig,
    SweepSpec,
    cells_executed,
    reset_cells_executed,
    run_sweep,
)


def draw_cell(rng, *, a, b, seed):
    return [[a, b, float(rng.random())]]


def noted_cell(rng, *, k):
    return CellOut(rows=[[k, float(rng.random())]], notes=(f"note-{k}",), aux=k * 10)


def single_cell(rng, *, seed):
    return [["only", seed, float(rng.random())]]


def config_probe_cell(rng, *, k, exec_config):
    backend = "none" if exec_config is None else exec_config.backend
    return [[k, backend]]


def kernel_probe_cell(rng, *, k, kernel):
    return [[k, kernel]]


def draw_stack(batch, *, seed):
    # the reference definition of a correct stack: per-cell arithmetic on
    # the batch's own streams, in span order
    return [
        draw_cell(rng, seed=seed, **coords)
        for rng, coords in zip(batch.generators(), batch.coords)
    ]


def exploding_stack(batch, *, seed):
    raise AssertionError("stacked pass must not run here")


def short_stack(batch, *, seed):
    return draw_stack(batch, seed=seed)[:-1]


def _spec(**kw):
    defaults = dict(
        experiment="TOY",
        title="toy sweep",
        headers=["a", "b", "value"],
        cell=draw_cell,
        axes=(("a", (1, 2)), ("b", ("x", "y", "z"))),
        context=dict(seed=0),
        seed=0,
    )
    defaults.update(kw)
    return SweepSpec(**defaults)


class TestGrid:
    def test_grid_order_is_product_order(self):
        cells = _spec().cells()
        assert [c.coords for c in cells] == [
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"}, {"a": 1, "b": "z"},
            {"a": 2, "b": "x"}, {"a": 2, "b": "y"}, {"a": 2, "b": "z"},
        ]
        assert [c.index for c in cells] == list(range(6))

    def test_empty_axes_is_single_cell(self):
        cells = _spec(axes=()).cells()
        assert len(cells) == 1 and cells[0].coords == {}

    def test_streams_keyed_by_seed_experiment_and_coords(self):
        spec = _spec()
        cells = spec.cells()

        def draws(s, c):
            ss = s.seed_sequence_for(c)
            return np.random.Generator(np.random.PCG64(ss)).random(2).tolist()

        assert draws(spec, cells[0]) == draws(_spec(), cells[0])
        assert draws(spec, cells[0]) != draws(spec, cells[1])
        assert draws(spec, cells[0]) != draws(_spec(seed=1), cells[0])
        assert draws(spec, cells[0]) != draws(_spec(experiment="TOY2"), cells[0])


class TestRunSweep:
    def test_deterministic(self):
        assert run_sweep(_spec()).render() == run_sweep(_spec()).render()

    def test_rows_in_grid_order(self):
        table = run_sweep(_spec())
        assert [(r[0], r[1]) for r in table.rows] == [
            (1, "x"), (1, "y"), (1, "z"), (2, "x"), (2, "y"), (2, "z"),
        ]

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_process_backend_bit_identical(self, workers):
        serial = run_sweep(_spec())
        par = run_sweep(
            _spec(), exec_config=ExecutionConfig(backend="process", workers=workers)
        )
        assert serial.rows == par.rows
        assert serial.render() == par.render()

    def test_cells_addressable_by_coordinates(self):
        """A cell's stream is a pure function of (seed, experiment, coords):
        any sub-grid — even one that reorders or drops earlier axis values —
        reproduces exactly its slice of the full sweep, which is what lets
        a dispatcher hand out cells without coordination."""
        full = run_sweep(_spec())
        sub = run_sweep(_spec(axes=(("a", (2, 1)), ("b", ("z", "x")))))
        by_coords = {(r[0], r[1]): r for r in full.rows}
        assert [by_coords[(r[0], r[1])] for r in sub.rows] == sub.rows
        solo = run_sweep(_spec(axes=(("a", (2,)), ("b", ("y",)))))
        assert solo.rows == [by_coords[(2, "y")]]

    def test_vectorized_backend_matches_serial(self):
        # cell-level execution has no batch form: vectorized runs the same
        # in-process loop and must be bit-identical
        serial = run_sweep(_spec())
        vec = run_sweep(_spec(), exec_config=ExecutionConfig(backend="vectorized"))
        assert serial.rows == vec.rows

    def test_unpicklable_cell_falls_back_serial(self):
        bad = _spec(cell=lambda rng, *, a, b, seed: [[a, b, float(rng.random())]])
        reference = run_sweep(bad)
        with pytest.warns(RuntimeWarning, match="picklable"):
            par = run_sweep(
                bad, exec_config=ExecutionConfig(backend="process", workers=2)
            )
        assert reference.rows == par.rows

    def test_bad_cell_return_rejected(self):
        spec = _spec(cell=lambda rng, *, a, b, seed: {"rows": []})
        with pytest.raises(TypeError, match="CellOut"):
            run_sweep(spec)


class TestStackedPass:
    """A SweepSpec.stack pass changes scheduling, never values: it is the
    default execution path when declared, spans reassemble bit-identically
    under the process backend, and the serial/vectorized kernels bypass it
    (the per-cell path stays the reference oracle)."""

    def test_stack_is_default_and_bit_identical(self):
        reference = run_sweep(_spec())
        stacked = run_sweep(_spec(stack=draw_stack))
        assert stacked.rows == reference.rows
        assert stacked.render() == reference.render()

    def test_explicit_stacked_kernel_selects_it(self):
        cfg = ExecutionConfig(kernel="stacked")
        assert run_sweep(_spec(stack=draw_stack), exec_config=cfg).rows == \
            run_sweep(_spec()).rows

    def test_stacked_kernel_without_stack_degrades_to_per_cell(self):
        cfg = ExecutionConfig(kernel="stacked")
        assert run_sweep(_spec(), exec_config=cfg).rows == \
            run_sweep(_spec()).rows

    def test_serial_and_vectorized_kernels_bypass_the_stack(self):
        reference = run_sweep(_spec())
        spec = _spec(stack=exploding_stack)
        for cfg in (ExecutionConfig(backend="serial"),
                    ExecutionConfig(kernel="vectorized")):
            assert run_sweep(spec, exec_config=cfg).rows == reference.rows

    @pytest.mark.parametrize("workers", [2, 3])
    def test_process_spans_bit_identical(self, workers):
        reference = run_sweep(_spec())
        cfg = ExecutionConfig(backend="process", workers=workers)
        par = run_sweep(_spec(stack=draw_stack), exec_config=cfg)
        assert par.rows == reference.rows
        assert par.render() == reference.render()

    def test_stack_run_labeled_in_telemetry(self):
        from repro.telemetry import TelemetryBuffer, set_default_writer

        buf = TelemetryBuffer()
        previous = set_default_writer(buf)
        try:
            run_sweep(_spec(stack=draw_stack))
        finally:
            set_default_writer(previous)
        (run,) = buf.of_type("sweep.run")
        assert run["kernel"] == "stacked" and run["cells"] == 6

    def test_wrong_output_count_rejected(self):
        with pytest.raises(ValueError, match="stacked pass returned"):
            run_sweep(_spec(stack=short_stack))

    def test_unpicklable_stack_degrades_in_process_with_event(self):
        from repro.telemetry import TelemetryBuffer, set_default_writer

        reference = run_sweep(_spec())
        bad = _spec(stack=lambda batch, *, seed: draw_stack(batch, seed=seed))
        cfg = ExecutionConfig(backend="process", workers=2)
        buf = TelemetryBuffer()
        previous = set_default_writer(buf)
        try:
            with pytest.warns(RuntimeWarning, match="not picklable"):
                degraded = run_sweep(bad, exec_config=cfg)
        finally:
            set_default_writer(previous)
        # degraded to the *in-process stacked* pass, not per-cell serial
        assert degraded.rows == reference.rows
        (event,) = buf.of_type("sweep.degrade")
        assert event["experiment"] == "TOY"
        assert event["reason"] == "unpicklable-cell"


class TestCellOut:
    def test_notes_and_finalize_aux(self):
        seen = {}

        def finalize(table, results, context):
            seen["aux"] = [r.aux for r in results]
            table.add_note("from finalize")

        spec = _spec(
            cell=noted_cell, axes=(("k", (1, 2)),), context={},
            headers=["k", "value"], finalize=finalize,
        )
        table = run_sweep(spec)
        assert table.notes == ["note-1", "note-2", "from finalize"]
        assert seen["aux"] == [10, 20]

    def test_spec_notes_after_cell_notes(self):
        spec = _spec(
            cell=noted_cell, axes=(("k", (1,)),), context={},
            headers=["k", "value"], notes=("static",),
        )
        assert run_sweep(spec).notes == ["note-1", "static"]


class TestExecConfigPassthrough:
    def test_in_process_cell_sees_config(self):
        spec = _spec(
            cell=config_probe_cell, axes=(("k", (1,)),), context={},
            headers=["k", "backend"], pass_exec_config=True,
        )
        assert run_sweep(spec).rows == [[1, "none"]]
        cfg = ExecutionConfig(backend="process", workers=2)
        # single-cell grid: runs in-process, config passes through
        assert run_sweep(spec, exec_config=cfg).rows == [[1, "process"]]

    def test_pooled_cells_get_serial_inner_config(self):
        spec = _spec(
            cell=config_probe_cell, axes=(("k", (1, 2)),), context={},
            headers=["k", "backend"], pass_exec_config=True,
        )
        cfg = ExecutionConfig(backend="process", workers=2)
        # multi-cell grid: cells ship to workers, inner loops must be serial
        assert run_sweep(spec, exec_config=cfg).rows == [[1, "none"], [2, "none"]]


class TestKernelPassthrough:
    def _spec(self):
        return _spec(
            cell=kernel_probe_cell, axes=(("k", (1, 2)),), context={},
            headers=["k", "kernel"], pass_kernel=True,
        )

    def test_default_is_vectorized(self):
        # no exec config: the vectorized kernels are the promoted default
        assert run_sweep(self._spec()).rows == [
            [1, "vectorized"], [2, "vectorized"],
        ]

    def test_serial_backend_selects_reference_loops(self):
        cfg = ExecutionConfig(backend="serial")
        assert run_sweep(self._spec(), exec_config=cfg).rows == [
            [1, "serial"], [2, "serial"],
        ]

    def test_vectorized_backend_selects_kernels(self):
        cfg = ExecutionConfig(backend="vectorized")
        assert run_sweep(self._spec(), exec_config=cfg).rows == [
            [1, "vectorized"], [2, "vectorized"],
        ]

    def test_pooled_cells_keep_vectorized_kernels(self):
        cfg = ExecutionConfig(backend="process", workers=2)
        assert run_sweep(self._spec(), exec_config=cfg).rows == [
            [1, "vectorized"], [2, "vectorized"],
        ]

    def test_explicit_kernel_overrides_backend(self):
        cfg = ExecutionConfig(backend="serial", kernel="vectorized")
        assert run_sweep(self._spec(), exec_config=cfg).rows == [
            [1, "vectorized"], [2, "vectorized"],
        ]

    def test_invalid_kernel_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            ExecutionConfig(kernel="gpu")


class TestExecutionCounter:
    def test_counts_and_resets(self):
        reset_cells_executed()
        run_sweep(_spec())
        assert cells_executed() == 6
        run_sweep(_spec(axes=(), cell=single_cell))
        assert cells_executed() == 7
        reset_cells_executed()
        assert cells_executed() == 0


class TestSweepTelemetry:
    """run_sweep emits per-cell timings and a run summary through the
    process-default telemetry sink; no sink, no overhead, no events."""

    def test_serial_sweep_emits_cell_and_run_events(self):
        from repro.telemetry import TelemetryBuffer, set_default_writer

        buf = TelemetryBuffer()
        previous = set_default_writer(buf)
        try:
            run_sweep(_spec())
        finally:
            set_default_writer(previous)
        cells = buf.of_type("sweep.cell")
        assert len(cells) == 6  # 2 x 3 grid
        assert {e["index"] for e in cells} == set(range(6))
        assert all(e["experiment"] == "TOY" for e in cells)
        assert all(e["kernel"] == "vectorized" for e in cells)
        (run,) = buf.of_type("sweep.run")
        assert run["cells"] == 6 and run["backend"] == "serial"
        assert run["wall_s"] >= max(e["wall_s"] for e in cells)

    def test_serial_backend_labels_kernel(self):
        from repro.telemetry import TelemetryBuffer, set_default_writer

        buf = TelemetryBuffer()
        previous = set_default_writer(buf)
        try:
            run_sweep(_spec(), ExecutionConfig(backend="serial"))
        finally:
            set_default_writer(previous)
        (run,) = buf.of_type("sweep.run")
        assert run["kernel"] == "serial" and run["backend"] == "serial"

    def test_unpicklable_cell_emits_degrade_event(self):
        from repro.telemetry import TelemetryBuffer, set_default_writer

        bad = _spec(cell=lambda rng, *, a, b, seed: [[a, b, float(rng.random())]])
        buf = TelemetryBuffer()
        previous = set_default_writer(buf)
        try:
            with pytest.warns(RuntimeWarning, match="picklable"):
                run_sweep(
                    bad, exec_config=ExecutionConfig(backend="process", workers=2)
                )
        finally:
            set_default_writer(previous)
        (event,) = buf.of_type("sweep.degrade")
        assert event["experiment"] == "TOY"
        assert event["reason"] == "unpicklable-cell"
        assert "detail" in event

    def test_no_sink_no_events(self):
        from repro.telemetry import reset_default_writer, set_default_writer

        previous = set_default_writer(None)
        try:
            table = run_sweep(_spec())  # must not raise, must not emit
            assert len(table.rows) == 6
        finally:
            set_default_writer(previous)
            reset_default_writer()


class TestTrialsTelemetry:
    def test_run_trials_emits_backend_and_walls(self):
        from repro.sim.montecarlo import run_trials
        from repro.telemetry import TelemetryBuffer, set_default_writer

        buf = TelemetryBuffer()
        previous = set_default_writer(buf)
        try:
            rng = np.random.default_rng(0)
            run_trials(lambda r: float(r.random()), 16, rng)
            run_trials(
                lambda r: float(r.random()), 16, np.random.default_rng(0),
                config=ExecutionConfig(backend="vectorized"),
                batch=lambda r, k: r.random(k),
            )
        finally:
            set_default_writer(previous)
        events = buf.of_type("trials.run")
        assert [e["backend"] for e in events] == ["serial", "vectorized"]
        assert all(e["trials"] == 16 and e["wall_s"] >= 0 for e in events)
