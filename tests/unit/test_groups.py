"""Unit tests: group construction and classification (repro.core.groups)."""

import numpy as np
import pytest

from repro.core.groups import (
    GroupSet,
    build_groups,
    build_groups_fast,
    classify_groups,
)
from repro.core.params import SystemParams
from repro.idspace.hashing import RandomOracle
from repro.idspace.ring import Ring


@pytest.fixture
def ring():
    return Ring(np.random.default_rng(1).random(256))


@pytest.fixture
def params():
    return SystemParams(n=256, beta=0.05, seed=0)


class TestGroupSet:
    def _make(self):
        leaders = np.array([0, 1, 2])
        indptr = np.array([0, 2, 2, 5])
        members = np.array([3, 4, 0, 1, 2])
        return GroupSet(leaders, indptr, members, n_ids=6)

    def test_members_of(self):
        gs = self._make()
        assert list(gs.members_of(0)) == [3, 4]
        assert list(gs.members_of(1)) == []
        assert list(gs.members_of(2)) == [0, 1, 2]

    def test_sizes(self):
        assert list(self._make().sizes()) == [2, 0, 3]

    def test_membership_counts(self):
        counts = self._make().membership_counts()
        assert counts[3] == 1 and counts[5] == 0

    def test_bad_counts_with_empty_group(self):
        gs = self._make()
        bad = np.array([True, False, False, True, False, False])
        counts = gs.bad_counts(bad)
        assert list(counts) == [1, 0, 1]

    def test_indptr_validation(self):
        with pytest.raises(ValueError):
            GroupSet(np.array([0]), np.array([0, 1, 2]), np.array([0, 1]), 4)

    def test_len(self):
        assert len(self._make()) == 3


class TestBuildGroups:
    def test_oracle_build_deterministic(self, ring, params):
        h = RandomOracle("h1", 9)
        a = build_groups(ring, params, h)
        b = build_groups(ring, params, h)
        assert np.array_equal(a.member_idx, b.member_idx)

    def test_members_are_successors_of_oracle_points(self, ring, params):
        h = RandomOracle("h1", 9)
        gs = build_groups(ring, params, h, leaders=np.array([5]))
        pts = h.many(float(ring.ids[5]), params.group_solicit_size)
        expect = np.unique(ring.successor_index_many(pts))
        assert np.array_equal(gs.members_of(0), expect)

    def test_sizes_within_window(self, ring, params):
        gs = build_groups_fast(ring, params, np.random.default_rng(0))
        sizes = gs.sizes()
        assert (sizes <= params.group_solicit_size).all()
        assert sizes.mean() > 0.5 * params.group_solicit_size

    def test_fast_build_distribution_matches_oracle(self, ring, params):
        """Mean group size and membership distribution agree between the
        verifiable build and the sampling shortcut."""
        h = RandomOracle("h1", 2)
        slow = build_groups(ring, params, h)
        fast = build_groups_fast(ring, params, np.random.default_rng(2))
        assert slow.sizes().mean() == pytest.approx(fast.sizes().mean(), rel=0.1)
        assert slow.membership_counts().mean() == pytest.approx(
            fast.membership_counts().mean(), rel=0.1
        )

    def test_custom_solicit(self, ring, params):
        gs = build_groups_fast(ring, params, np.random.default_rng(0), solicit=5)
        assert gs.sizes().max() <= 5

    def test_custom_leaders(self, ring, params):
        h = RandomOracle("h1", 9)
        gs = build_groups(ring, params, h, leaders=np.array([3, 7]))
        assert gs.n_groups == 2


class TestKernelEquivalence:
    """The vectorized CSR kernel must be byte-identical to the loop."""

    def _assert_same(self, a, b):
        assert np.array_equal(a.leaders, b.leaders)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.member_idx, b.member_idx)
        assert a.indptr.dtype == b.indptr.dtype
        assert a.member_idx.dtype == b.member_idx.dtype
        assert a.n_ids == b.n_ids

    def test_oracle_build_kernels_identical(self, ring, params):
        h = RandomOracle("h1", 4)
        self._assert_same(
            build_groups(ring, params, h, kernel="vectorized"),
            build_groups(ring, params, h, kernel="serial"),
        )

    def test_fast_build_kernels_identical(self, ring, params):
        self._assert_same(
            build_groups_fast(ring, params, np.random.default_rng(5),
                              kernel="vectorized"),
            build_groups_fast(ring, params, np.random.default_rng(5),
                              kernel="serial"),
        )

    def test_fast_build_kernels_consume_same_stream(self, ring, params):
        """Downstream draws must not depend on the kernel choice."""
        r1 = np.random.default_rng(5)
        r2 = np.random.default_rng(5)
        build_groups_fast(ring, params, r1, kernel="vectorized")
        build_groups_fast(ring, params, r2, kernel="serial")
        assert r1.random() == r2.random()

    def test_kernels_identical_with_custom_solicit_and_subset(self, ring, params):
        for solicit in (1, 3, 17):
            self._assert_same(
                build_groups_fast(ring, params, np.random.default_rng(0),
                                  n_groups=10, solicit=solicit,
                                  kernel="vectorized"),
                build_groups_fast(ring, params, np.random.default_rng(0),
                                  n_groups=10, solicit=solicit,
                                  kernel="serial"),
            )

    def test_oracle_subset_leaders_kernels_identical(self, ring, params):
        h = RandomOracle("h2", 11)
        leaders = np.array([0, 5, 17, 255])
        self._assert_same(
            build_groups(ring, params, h, leaders=leaders, kernel="vectorized"),
            build_groups(ring, params, h, leaders=leaders, kernel="serial"),
        )

    def test_unknown_kernel_rejected(self, ring, params):
        with pytest.raises(ValueError, match="kernel"):
            build_groups_fast(ring, params, np.random.default_rng(0),
                              kernel="gpu")
        with pytest.raises(ValueError, match="kernel"):
            build_groups(ring, params, RandomOracle("h1", 0), kernel="loop")


class TestClassify:
    def test_no_bad_ids_all_good(self, ring, params):
        gs = build_groups_fast(ring, params, np.random.default_rng(0))
        q = classify_groups(gs, np.zeros(ring.n, dtype=bool), params)
        assert q.bad_group_fraction == 0.0

    def test_all_bad_ids_all_bad(self, ring, params):
        gs = build_groups_fast(ring, params, np.random.default_rng(0))
        q = classify_groups(gs, np.ones(ring.n, dtype=bool), params)
        assert q.bad_group_fraction == 1.0

    def test_threshold_boundary(self, params):
        # group of exactly 6 members, threshold 1/3 => 2 bad ok, 3 bad bad
        ring = Ring(np.linspace(0.05, 0.95, 10))
        leaders = np.array([0])
        indptr = np.array([0, 6])
        members = np.arange(6)
        gs = GroupSet(leaders, indptr, members, ring.n)
        bad2 = np.zeros(ring.n, dtype=bool)
        bad2[:2] = True
        q2 = classify_groups(gs, bad2, params, min_size=2)
        assert not q2.is_bad[0]
        bad3 = np.zeros(ring.n, dtype=bool)
        bad3[:3] = True
        q3 = classify_groups(gs, bad3, params, min_size=2)
        assert q3.is_bad[0]

    def test_min_size_rule(self, params):
        ring = Ring(np.linspace(0.05, 0.95, 10))
        gs = GroupSet(np.array([0]), np.array([0, 1]), np.array([0]), ring.n)
        q = classify_groups(gs, np.zeros(ring.n, dtype=bool), params, min_size=3)
        assert q.is_bad[0]  # too small despite zero bad members

    def test_override_threshold(self, params):
        ring = Ring(np.linspace(0.05, 0.95, 10))
        gs = GroupSet(np.array([0]), np.array([0, 4]), np.arange(4), ring.n)
        bad = np.zeros(ring.n, dtype=bool)
        bad[0] = True  # 25% bad
        strict = classify_groups(gs, bad, params, min_size=2, threshold=0.2)
        lax = classify_groups(gs, bad, params, min_size=2, threshold=0.3)
        assert strict.is_bad[0] and not lax.is_bad[0]

    def test_bad_fraction_reported(self, params):
        ring = Ring(np.linspace(0.05, 0.95, 10))
        gs = GroupSet(np.array([0]), np.array([0, 4]), np.arange(4), ring.n)
        bad = np.zeros(ring.n, dtype=bool)
        bad[:2] = True
        q = classify_groups(gs, bad, params, min_size=2)
        assert q.bad_fraction[0] == pytest.approx(0.5)

    def test_leader_badness_does_not_mark_group(self, ring, params):
        """Per §I-C the classification is by member composition only."""
        gs = build_groups_fast(ring, params, np.random.default_rng(0))
        bad = np.zeros(ring.n, dtype=bool)
        lead = int(gs.leaders[0])
        if lead not in gs.members_of(0):
            bad[lead] = True
            q = classify_groups(gs, bad, params)
            assert not q.is_bad[0]
