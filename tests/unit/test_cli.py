"""Unit tests: CLI (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Tiny Groups" in out
        assert "chord" in out
        assert "E15" in out

    def test_validate_ok(self, capsys):
        assert main(["validate", "chord", "-n", "128", "--probes", "1000"]) == 0
        assert "P1" in capsys.readouterr().out

    def test_validate_unknown_topology(self):
        with pytest.raises(ValueError):
            main(["validate", "pancake", "-n", "128"])

    def test_simulate(self, capsys):
        assert main([
            "simulate", "-n", "128", "--epochs", "1", "--probes", "200",
        ]) == 0
        out = capsys.readouterr().out
        assert "epoch" in out

    def test_experiments_single(self, capsys):
        assert main(["experiments", "E10"]) == 0
        assert "[E10]" in capsys.readouterr().out

    def test_experiments_cache_flags_parse(self):
        args = build_parser().parse_args(
            ["experiments", "E1", "--cache", "--force", "--cache-dir", "/tmp/x"]
        )
        assert args.cache and args.force and args.cache_dir == "/tmp/x"
        assert build_parser().parse_args(
            ["experiments", "E1", "--no-cache"]
        ).cache is False
        assert build_parser().parse_args(["experiments", "E1"]).cache is False

    def test_cache_dir_implies_cache(self, tmp_path, capsys):
        assert main(
            ["experiments", "E13", "--cache-dir", str(tmp_path)]
        ) == 0
        capsys.readouterr()
        assert list(tmp_path.glob("e13-*.json"))  # entry written without --cache

    def test_experiments_cached_run_hits(self, tmp_path, capsys):
        from repro.sim import cells_executed, reset_cells_executed

        argv = ["experiments", "E13", "--cache", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        reset_cells_executed()
        assert main(argv) == 0
        assert cells_executed() == 0  # warm: rendered from the cache
        assert capsys.readouterr().out == cold

    def test_backend_default_is_substrate_default(self):
        # no --backend: exec_config stays unset so the vectorized kernels
        # (the promoted default path) apply
        args = build_parser().parse_args(["experiments", "E1"])
        assert args.backend is None

    def test_explicit_serial_backend_parses(self):
        args = build_parser().parse_args(
            ["experiments", "E1", "--backend", "serial"]
        )
        assert args.backend == "serial"


class TestCacheCommand:
    def _fill(self, cache_dir, experiments=("E1", "E2")):
        from repro.analysis.tables import TableResult
        from repro.experiments.cache import ResultCache

        rc = ResultCache(cache_dir)
        for name in experiments:
            t = TableResult(experiment=name, title="t", headers=["a"])
            t.add_row("x")
            rc.store(name, 0, True, {}, t)
        return rc

    def test_ls_empty(self, tmp_path, capsys):
        assert main(["cache", "ls", "--cache-dir", str(tmp_path)]) == 0
        assert "empty" in capsys.readouterr().out

    def test_ls_lists_entries(self, tmp_path, capsys):
        self._fill(tmp_path)
        assert main(["cache", "ls", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out
        assert "E1" in out and "E2" in out

    def test_prune_requires_a_bound(self, tmp_path, capsys):
        self._fill(tmp_path)
        assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 2
        assert "nothing to do" in capsys.readouterr().out

    def test_prune_max_bytes(self, tmp_path, capsys):
        rc = self._fill(tmp_path)
        assert main([
            "cache", "prune", "--cache-dir", str(tmp_path), "--max-bytes", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "pruned 2 entries" in out
        assert rc.entries() == []

    def test_prune_older_than_keeps_fresh_entries(self, tmp_path, capsys):
        rc = self._fill(tmp_path)
        assert main([
            "cache", "prune", "--cache-dir", str(tmp_path),
            "--older-than", "1",
        ]) == 0
        assert "pruned 0 entries" in capsys.readouterr().out
        assert len(rc.entries()) == 2

    def test_prune_keep_latest_per_experiment(self, tmp_path, capsys):
        import os

        rc = self._fill(tmp_path)
        # second generation for E1 (distinct seed -> distinct key), newest
        from repro.analysis.tables import TableResult

        t = TableResult(experiment="E1", title="t", headers=["a"])
        t.add_row("y")
        p = rc.store("E1", 1, True, {}, t)
        base = 1_700_000_000
        for i, e in enumerate(rc.entries()):
            os.utime(e.path, (base + i, base + i))
        os.utime(p, (base + 100, base + 100))
        assert main([
            "cache", "prune", "--cache-dir", str(tmp_path),
            "--keep-latest-per-experiment",
        ]) == 0
        assert "pruned 1 entries" in capsys.readouterr().out
        kept = rc.entries()
        assert len(kept) == 2  # newest E1 + the lone E2
        assert {e.experiment for e in kept} == {"E1", "E2"}
        assert p in [e.path for e in kept]

    def test_prune_flag_alone_counts_as_a_bound(self, tmp_path, capsys):
        self._fill(tmp_path)
        # with only one entry per experiment the policy removes nothing,
        # but it is a valid pruning request (exit 0, not the usage error)
        assert main([
            "cache", "prune", "--cache-dir", str(tmp_path),
            "--keep-latest-per-experiment",
        ]) == 0
        assert "pruned 0 entries" in capsys.readouterr().out


class TestDispatchCommand:
    """`repro dispatch serve/work/collect` — in-process round trips (the
    separate-OS-process scenario lives in
    tests/integration/test_dispatch_cli.py)."""

    OVERRIDES = ["--set", "n_values=[128]", "--set", "probes=300",
                 "--set", 'topologies=["chord"]']

    def test_serve_work_collect_round_trip(self, tmp_path, capsys):
        spool = str(tmp_path / "spool")
        assert main(["--seed", "2", "dispatch", "serve", "E1",
                     *self.OVERRIDES, "--spool", spool]) == 0
        assert "1 of 1 units enqueued" in capsys.readouterr().out
        assert main(["dispatch", "work", "--spool", spool]) == 0
        assert "executed 1 unit" in capsys.readouterr().out
        assert main(["dispatch", "collect", "--spool", spool]) == 0
        out = capsys.readouterr().out
        from repro.experiments.runner import run_experiment

        oracle = run_experiment(
            "E1", seed=2, fast=True, n_values=[128], probes=300,
            topologies=["chord"],
        )
        assert out.strip() == oracle.render().strip()

    def test_collect_incomplete_is_exit_1(self, tmp_path, capsys):
        spool = str(tmp_path / "spool")
        assert main(["dispatch", "serve", "E1", *self.OVERRIDES,
                     "--spool", spool]) == 0
        capsys.readouterr()
        assert main(["dispatch", "collect", "--spool", spool]) == 1
        captured = capsys.readouterr()
        assert "incomplete" in captured.err
        assert captured.out.strip() == ""  # no partial table on stdout

    def test_bad_set_syntax_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["dispatch", "serve", "E1", "--set", "probes",
                  "--spool", str(tmp_path / "s")])

    def test_set_values_parse_as_json_with_string_fallback(self, tmp_path, capsys):
        spool = str(tmp_path / "spool")
        # topologies as a bare string would TypeError inside build_spec's
        # tuple(); as JSON it is a list — and an unknown key must fail
        # loudly at serve time with the experiment named
        with pytest.raises(TypeError, match="E1"):
            main(["dispatch", "serve", "E1", "--set", "probez=5",
                  "--spool", spool])

    def test_serve_cache_hit_enqueues_nothing(self, tmp_path, capsys):
        spool = str(tmp_path / "spool")
        cache_dir = str(tmp_path / "cache")
        assert main(["dispatch", "serve", "E1", *self.OVERRIDES,
                     "--spool", spool, "--cache-dir", cache_dir]) == 0
        assert main(["dispatch", "work", "--spool", spool]) == 0
        assert main(["dispatch", "collect", "--spool", spool,
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        spool2 = str(tmp_path / "spool2")
        assert main(["dispatch", "serve", "E1", *self.OVERRIDES,
                     "--spool", spool2, "--cache-dir", cache_dir]) == 0
        assert "cache hit" in capsys.readouterr().out
        assert main(["dispatch", "collect", "--spool", spool2]) == 0

    def test_work_self_heals_a_corrupt_completion(self, tmp_path, capsys):
        # regression: a Byzantine completion must not let the worker pool
        # exit "done" on an unverifiable spool — the same worker sweeps
        # the invalid result, requeues the unit, and re-executes honestly
        spool = str(tmp_path / "spool")
        assert main(["dispatch", "serve", "E1", *self.OVERRIDES,
                     "--spool", spool]) == 0
        assert main(["dispatch", "work", "--spool", spool,
                     "--chaos", "corrupt:1"]) == 0
        capsys.readouterr()
        # no further work needed: collect verifies and assembles directly
        assert main(["dispatch", "collect", "--spool", spool]) == 0
        assert "[E1]" in capsys.readouterr().out

    def test_recollect_publishes_staged_table_to_cache(self, tmp_path, capsys):
        # regression: collect --cache on a spool whose table was already
        # staged by a cache-less collect must still store the entry
        spool = str(tmp_path / "spool")
        cache_dir = tmp_path / "cache"
        assert main(["dispatch", "serve", "E1", *self.OVERRIDES,
                     "--spool", spool]) == 0
        assert main(["dispatch", "work", "--spool", spool]) == 0
        assert main(["dispatch", "collect", "--spool", spool]) == 0  # stages
        assert main(["dispatch", "collect", "--spool", spool,
                     "--cache-dir", str(cache_dir)]) == 0
        from repro.experiments.cache import ResultCache

        assert [e.experiment for e in ResultCache(cache_dir).entries()] == ["E1"]

    def test_work_on_cache_hit_spool_exits_immediately(self, tmp_path, capsys):
        # regression: a spool completed by a serve-time cache hit holds
        # zero units; a worker pointed at it must exit 0, not poll forever
        spool = str(tmp_path / "spool")
        cache_dir = str(tmp_path / "cache")
        assert main(["dispatch", "serve", "E1", *self.OVERRIDES,
                     "--spool", spool, "--cache-dir", cache_dir]) == 0
        assert main(["dispatch", "work", "--spool", spool]) == 0
        assert main(["dispatch", "collect", "--spool", spool,
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        spool2 = str(tmp_path / "spool2")
        assert main(["dispatch", "serve", "E1", *self.OVERRIDES,
                     "--spool", spool2, "--cache-dir", cache_dir]) == 0
        assert "cache hit" in capsys.readouterr().out
        assert main(["dispatch", "work", "--spool", spool2]) == 0
        assert "executed 0 unit" in capsys.readouterr().out
