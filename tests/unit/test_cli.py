"""Unit tests: CLI (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Tiny Groups" in out
        assert "chord" in out
        assert "E15" in out

    def test_validate_ok(self, capsys):
        assert main(["validate", "chord", "-n", "128", "--probes", "1000"]) == 0
        assert "P1" in capsys.readouterr().out

    def test_validate_unknown_topology(self):
        with pytest.raises(ValueError):
            main(["validate", "pancake", "-n", "128"])

    def test_simulate(self, capsys):
        assert main([
            "simulate", "-n", "128", "--epochs", "1", "--probes", "200",
        ]) == 0
        out = capsys.readouterr().out
        assert "epoch" in out

    def test_experiments_single(self, capsys):
        assert main(["experiments", "E10"]) == 0
        assert "[E10]" in capsys.readouterr().out

    def test_experiments_cache_flags_parse(self):
        args = build_parser().parse_args(
            ["experiments", "E1", "--cache", "--force", "--cache-dir", "/tmp/x"]
        )
        assert args.cache and args.force and args.cache_dir == "/tmp/x"
        assert build_parser().parse_args(
            ["experiments", "E1", "--no-cache"]
        ).cache is False
        assert build_parser().parse_args(["experiments", "E1"]).cache is False

    def test_cache_dir_implies_cache(self, tmp_path, capsys):
        assert main(
            ["experiments", "E13", "--cache-dir", str(tmp_path)]
        ) == 0
        capsys.readouterr()
        assert list(tmp_path.glob("e13-*.json"))  # entry written without --cache

    def test_experiments_cached_run_hits(self, tmp_path, capsys):
        from repro.sim import cells_executed, reset_cells_executed

        argv = ["experiments", "E13", "--cache", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        reset_cells_executed()
        assert main(argv) == 0
        assert cells_executed() == 0  # warm: rendered from the cache
        assert capsys.readouterr().out == cold
