"""Unit tests: CLI (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Tiny Groups" in out
        assert "chord" in out
        assert "E15" in out

    def test_validate_ok(self, capsys):
        assert main(["validate", "chord", "-n", "128", "--probes", "1000"]) == 0
        assert "P1" in capsys.readouterr().out

    def test_validate_unknown_topology(self):
        with pytest.raises(ValueError):
            main(["validate", "pancake", "-n", "128"])

    def test_simulate(self, capsys):
        assert main([
            "simulate", "-n", "128", "--epochs", "1", "--probes", "200",
        ]) == 0
        out = capsys.readouterr().out
        assert "epoch" in out

    def test_experiments_single(self, capsys):
        assert main(["experiments", "E10"]) == 0
        assert "[E10]" in capsys.readouterr().out
