"""Unit tests: adversary strategies (repro.adversary)."""

import numpy as np
import pytest

from repro.adversary import (
    ClusterAdversary,
    KeyTargetAdversary,
    OmissionAdversary,
    UniformAdversary,
)


class TestBase:
    def test_beta_validation(self):
        with pytest.raises(ValueError):
            UniformAdversary(0.6)
        with pytest.raises(ValueError):
            UniformAdversary(-0.1)

    def test_id_budget(self):
        assert UniformAdversary(0.1).id_budget(1000) == 100

    def test_population_mask_aligned(self):
        adv = UniformAdversary(0.1)
        ids, bad = adv.population(500, np.random.default_rng(0))
        assert ids.size == bad.size
        assert bad.sum() == 50
        assert (np.diff(ids) > 0).all()  # sorted, distinct

    def test_population_in_range(self):
        ids, _ = UniformAdversary(0.2).population(300, np.random.default_rng(1))
        assert (ids >= 0).all() and (ids < 1).all()


class TestStrategies:
    def test_uniform_spread(self):
        ids = UniformAdversary(0.3).place_ids(3000, np.random.default_rng(0))
        assert abs(ids.mean() - 0.5) < 0.05

    def test_cluster_confined(self):
        adv = ClusterAdversary(0.3, start=0.4, width=0.1)
        ids = adv.place_ids(500, np.random.default_rng(0))
        assert (np.mod(ids - 0.4, 1.0) < 0.1).all()

    def test_cluster_wraps(self):
        adv = ClusterAdversary(0.3, start=0.95, width=0.1)
        ids = adv.place_ids(500, np.random.default_rng(0))
        assert ((ids >= 0.95) | (ids < 0.05)).all()

    def test_cluster_width_validation(self):
        with pytest.raises(ValueError):
            ClusterAdversary(0.1, width=0.0)

    def test_omission_subset_of_uniform(self):
        adv = OmissionAdversary(0.3, start=0.0, width=0.25)
        ids = adv.place_ids(1000, np.random.default_rng(0))
        assert ids.size < 1000  # withheld the rest
        assert ids.size == pytest.approx(250, abs=60)
        assert (ids < 0.25).all()

    def test_omission_population_fields_fewer(self):
        adv = OmissionAdversary(0.2, width=0.5)
        ids, bad = adv.population(1000, np.random.default_rng(0))
        assert bad.sum() < 200  # omitted about half its budget
        # n stays constant (paper model): withheld slots are good joiners
        assert ids.size == 1000

    def test_key_target_lands_before_key(self):
        adv = KeyTargetAdversary(0.1, key=0.5, spread=1e-3)
        ids = adv.place_ids(100, np.random.default_rng(0))
        d = np.mod(0.5 - ids, 1.0)
        assert (d <= 1e-3).all()

    def test_key_target_captures_successor(self):
        """Without PoW placement control, the victim key's successors are
        adversarial — the attack the two-hash scheme prevents."""
        from repro.idspace.ring import Ring

        rng = np.random.default_rng(3)
        adv = KeyTargetAdversary(0.05, key=0.5)
        ids, bad = adv.population(500, rng)
        ring = Ring(ids)
        suc = ring.successor_index(0.5 - 5e-4)
        assert bad[suc]
