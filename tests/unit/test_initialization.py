"""Unit tests: App.-X heavyweight initialization (repro.core.initialization)."""

import numpy as np
import pytest

from repro.adversary import UniformAdversary
from repro.core.initialization import elect_representative_cluster, heavyweight_init
from repro.core.membership import measure_qf
from repro.core.params import SystemParams


@pytest.fixture
def population():
    rng = np.random.default_rng(41)
    params = SystemParams(n=256, beta=0.05, seed=0)
    ids, bad = UniformAdversary(params.beta).population(params.n, rng)
    return params, ids, bad, rng


class TestElection:
    def test_cluster_size_logarithmic(self, population):
        params, ids, bad, rng = population
        cluster, agreed, msgs = elect_representative_cluster(
            ids.size, bad, params, rng
        )
        assert cluster.size == max(4, round(2.0 * params.ln_n))
        assert agreed

    def test_cluster_good_majority_whp(self, population):
        params, ids, bad, rng = population
        majorities = 0
        for _ in range(30):
            cluster, _, _ = elect_representative_cluster(ids.size, bad, params, rng)
            if (~bad[cluster]).sum() * 2 > cluster.size:
                majorities += 1
        assert majorities >= 28

    def test_election_cost_superlinear(self, population):
        params, ids, bad, rng = population
        _, _, msgs = elect_representative_cluster(ids.size, bad, params, rng)
        assert msgs >= ids.size ** 1.5  # [21]'s soft-O(n^{3/2}) bill


class TestHeavyweightInit:
    def test_produces_valid_pair(self, population):
        params, ids, bad, rng = population
        report = heavyweight_init(params, ids, bad, rng)
        pair = report.pair
        assert pair.n == ids.size
        assert pair.side1 is not None and pair.side2 is not None
        assert not pair.side1.confused.any()

    def test_pair_has_low_qf(self, population):
        """The initialized pair matches the EpochSimulator's assumed epoch-0
        distribution: searches almost always succeed."""
        params, ids, bad, rng = population
        report = heavyweight_init(params, ids, bad, rng)
        q1, q2 = measure_qf(report.pair, params, 1000, rng)
        assert q1 < 0.05 and q2 < 0.05

    def test_costs_reported(self, population):
        params, ids, bad, rng = population
        report = heavyweight_init(params, ids, bad, rng)
        assert report.discovery_messages > 0
        assert report.election_messages >= ids.size ** 1.5
        assert report.assignment_messages > 0

    def test_cluster_flagged(self, population):
        params, ids, bad, rng = population
        report = heavyweight_init(params, ids, bad, rng)
        assert report.cluster_good_majority
        assert report.election_agreed
