"""Unit tests: theory predictions, stats, tables (repro.analysis)."""

import json
import math

import numpy as np
import pytest

from repro.analysis import (
    TableResult,
    bad_group_probability,
    bootstrap_ci,
    chernoff_upper,
    corollary1_cost_rows,
    group_size_for_target,
    ks_uniform,
    lemma7_red_bound,
    lemma8_confusion_bound,
    proportion_ci,
    render_table,
    union_bound_failure,
)
from repro.core.params import SystemParams


class TestBadGroupProbability:
    def test_monotone_decreasing_in_size(self):
        probs = [bad_group_probability(s, 0.1, 1 / 3) for s in (4, 8, 16, 32)]
        assert probs == sorted(probs, reverse=True)

    def test_monotone_increasing_in_beta(self):
        assert bad_group_probability(16, 0.2, 1 / 3) > bad_group_probability(
            16, 0.05, 1 / 3
        )

    def test_zero_size_certain(self):
        assert bad_group_probability(0, 0.1, 1 / 3) == 1.0

    def test_matches_hand_computation(self):
        # size 2, threshold 1/3 => bad iff >= 1 bad member: 1 - (1-b)^2
        b = 0.1
        assert bad_group_probability(2, b, 1 / 3) == pytest.approx(1 - (1 - b) ** 2)

    def test_chernoff_upper_bounds_exact_at_scale(self):
        for s in (30, 60, 120):
            exact = bad_group_probability(s, 0.05, 1 / 3)
            cher = chernoff_upper(s, 0.05, 1 / 3)
            assert cher >= exact

    def test_chernoff_trivial_when_threshold_below_beta(self):
        assert chernoff_upper(16, 0.3, 0.2) == 1.0


class TestBounds:
    def test_lemma7_increases_with_qf(self):
        p = SystemParams(n=1024)
        assert lemma7_red_bound(0.1, p) > lemma7_red_bound(0.01, p)

    def test_lemma7_floor_is_composition(self):
        p = SystemParams(n=1024)
        comp = bad_group_probability(
            p.group_solicit_size, p.beta, p.bad_member_threshold
        )
        assert lemma7_red_bound(0.0, p) >= comp

    def test_lemma8_quadratic(self):
        p = SystemParams(n=1024)
        r1 = lemma8_confusion_bound(0.01, p)
        r2 = lemma8_confusion_bound(0.02, p)
        assert r2 == pytest.approx(4 * r1, rel=0.01)

    def test_union_bound_clamped(self):
        assert union_bound_failure(0.5, 10) == 1.0
        assert union_bound_failure(0.01, 10) == pytest.approx(0.1)


class TestGroupSizeForTarget:
    def test_polylog_much_smaller_than_poly(self):
        n = 2**20
        thr = 1 / 3
        tiny = group_size_for_target(n, 0.05, thr, 1 / math.log(n) ** 3)
        classic = group_size_for_target(n, 0.05, thr, 1 / n**2)
        assert tiny < classic / 3

    def test_scaling_shapes(self):
        """Tiny sizes grow ~log log n; classic ~log n (the paper's headline)."""
        thr = 1 / 3
        tiny = [
            group_size_for_target(n, 0.05, thr, 1 / math.log(n) ** 3)
            for n in (2**10, 2**20, 2**30)
        ]
        classic = [
            group_size_for_target(n, 0.05, thr, 1 / n**2)
            for n in (2**10, 2**20, 2**30)
        ]
        # classic sizes scale like log n (x3 from 2^10 to 2^30); tiny sizes
        # move much less (log log n plus the shrinking 1/ln^3 target)
        assert classic[2] / classic[0] > 2.0
        assert tiny[2] / tiny[0] < classic[2] / classic[0]
        assert tiny[2] / tiny[0] < 3.0

    def test_loose_target_small_group(self):
        assert group_size_for_target(1024, 0.05, 1 / 3, 0.9) <= 3


class TestCostRows:
    def test_two_constructions(self):
        rows = corollary1_cost_rows(2**16)
        assert len(rows) == 2
        tiny, classic = rows
        assert tiny["routing"] < classic["routing"]

    def test_ratio_grows_with_n(self):
        def ratio(n):
            t, c = corollary1_cost_rows(n)
            return c["routing"] / t["routing"]

        assert ratio(2**30) > ratio(2**10)


class TestStats:
    def test_ks_uniform_accepts_uniform(self):
        t = ks_uniform(np.random.default_rng(0).random(3000))
        assert t.looks_uniform()

    def test_ks_uniform_rejects_clustered(self):
        t = ks_uniform(0.1 * np.random.default_rng(0).random(3000))
        assert not t.looks_uniform()

    def test_ks_empty(self):
        assert ks_uniform(np.array([])).looks_uniform()

    def test_proportion_ci_brackets_point(self):
        p, lo, hi = proportion_ci(30, 100)
        assert lo <= p <= hi
        assert p == pytest.approx(0.3)

    def test_proportion_ci_rare_events(self):
        p, lo, hi = proportion_ci(0, 1000)
        assert lo == 0.0 and hi < 0.01

    def test_bootstrap_ci(self):
        rng = np.random.default_rng(0)
        vals = rng.normal(5.0, 1.0, size=400)
        point, lo, hi = bootstrap_ci(vals, rng)
        assert lo < 5.0 < hi
        assert point == pytest.approx(5.0, abs=0.2)

    def test_bootstrap_empty(self):
        assert bootstrap_ci(np.array([]), np.random.default_rng(0)) == (0, 0, 0)


class TestTables:
    def test_render_alignment(self):
        s = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = s.splitlines()
        assert lines[0] == "T"
        assert all(len(l) == len(lines[1]) for l in lines[1:])

    def test_table_result_roundtrip(self):
        t = TableResult("EX", "demo", ["x", "y"])
        t.add_row(1, "a")
        t.add_row(2, "b")
        t.add_note("note")
        out = t.render()
        assert "[EX] demo" in out and "note" in out
        assert t.column("y") == ["a", "b"]

    def test_column_unknown_raises(self):
        t = TableResult("EX", "demo", ["x"])
        with pytest.raises(ValueError):
            t.column("nope")


class TestTableJson:
    """JSON round trip — the contract the on-disk result cache rests on."""

    def _table(self) -> TableResult:
        t = TableResult("EX", "demo title", ["name", "count", "rate", "ok"])
        t.add_row("alpha", 3, 0.125, "ok")
        t.add_row("beta", 0, 1.0, "FAIL")
        t.add_note("first note")
        t.add_note("second | note: with punctuation")
        return t

    def test_round_trip_equal_fields(self):
        t = self._table()
        back = TableResult.from_json(t.to_json())
        assert back.experiment == t.experiment
        assert back.title == t.title
        assert back.headers == t.headers
        assert back.rows == t.rows
        assert back.notes == t.notes

    def test_round_trip_render_identical(self):
        t = self._table()
        assert TableResult.from_json(t.to_json()).render() == t.render()

    def test_non_str_cells_keep_types(self):
        t = TableResult("EX", "t", ["i", "f", "s", "none"])
        t.add_row(7, 2.5, "txt", None)
        back = TableResult.from_json(t.to_json())
        assert back.rows == [[7, 2.5, "txt", None]]
        assert isinstance(back.rows[0][0], int)
        assert isinstance(back.rows[0][1], float)

    def test_numpy_cells_coerce_render_identical(self):
        t = TableResult("EX", "t", ["i", "f"])
        t.add_row(np.int64(42), np.float64(0.25))
        back = TableResult.from_json(t.to_json())
        assert back.rows == [[42, 0.25]]
        assert back.render() == t.render()

    def test_empty_table(self):
        t = TableResult("EX", "empty", ["a"])
        back = TableResult.from_json(t.to_json())
        assert back.rows == [] and back.notes == []
        assert back.render() == t.render()


class TestBenchIO:
    """Machine-readable benchmark rows (repro.analysis.benchio)."""

    def _row(self, **kw):
        from repro.analysis import bench_row

        base = dict(experiment="e2", n=4096, backend="serial",
                    wall_s=1.234567891, cells=1, trials=100_000)
        base.update(kw)
        return bench_row(**base)

    def test_row_shape_and_normalization(self):
        row = self._row()
        assert row == {
            "experiment": "E2", "n": 4096, "backend": "serial",
            "wall_s": 1.234568, "cells": 1, "trials": 100_000,
        }

    def test_read_missing_and_corrupt(self, tmp_path):
        from repro.analysis import read_bench_rows

        assert read_bench_rows(tmp_path / "nope.json") == []
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert read_bench_rows(bad) == []
        bad.write_text('{"a": 1}')  # not a list
        assert read_bench_rows(bad) == []

    def test_record_merges_by_key(self, tmp_path):
        from repro.analysis import read_bench_rows, record_bench_rows

        path = tmp_path / "BENCH_vectorized.json"
        record_bench_rows(path, [self._row(wall_s=2.0)])
        record_bench_rows(path, [
            self._row(wall_s=1.0),                       # replaces same key
            self._row(backend="vectorized", wall_s=0.1),  # new key
        ])
        rows = read_bench_rows(path)
        assert len(rows) == 2
        by_backend = {r["backend"]: r for r in rows}
        assert by_backend["serial"]["wall_s"] == 1.0
        assert by_backend["vectorized"]["wall_s"] == 0.1

    def test_record_sorted_and_stable(self, tmp_path):
        from repro.analysis import record_bench_rows

        path = tmp_path / "bench.json"
        record_bench_rows(path, [
            self._row(experiment="E3", n=8192),
            self._row(experiment="E2", n=512),
            self._row(experiment="E2", n=4096),
        ])
        first = path.read_text()
        record_bench_rows(path, [])  # no-op merge must not reorder
        assert path.read_text() == first
        keys = [(r["experiment"], r["n"]) for r in json.loads(first)]
        assert keys == [("E2", 512), ("E2", 4096), ("E3", 8192)]


class TestBenchIOMergeEdgeCases:
    """Merge-by-key edge cases for the perf-ledger file: multiple writers,
    rows with missing fields, and concurrent bench scripts appending."""

    def _row(self, **kw):
        from repro.analysis import bench_row

        base = dict(experiment="e2", n=4096, backend="serial",
                    wall_s=1.0, cells=1, trials=100)
        base.update(kw)
        return bench_row(**base)

    def test_duplicate_keys_across_writers_last_wins(self, tmp_path):
        from repro.analysis import read_bench_rows, record_bench_rows

        path = tmp_path / "bench.json"
        # writer A (e.g. bench_vectorized.py) ...
        record_bench_rows(path, [self._row(wall_s=2.0)])
        # ... then writer B (tools/smoke_vectorized.py) re-records the key
        record_bench_rows(path, [self._row(wall_s=0.5)])
        rows = read_bench_rows(path)
        assert len(rows) == 1 and rows[0]["wall_s"] == 0.5

    def test_duplicate_keys_within_one_batch_last_wins(self, tmp_path):
        from repro.analysis import read_bench_rows, record_bench_rows

        path = tmp_path / "bench.json"
        record_bench_rows(path, [self._row(wall_s=3.0), self._row(wall_s=1.0)])
        rows = read_bench_rows(path)
        assert len(rows) == 1 and rows[0]["wall_s"] == 1.0

    def test_concurrent_writers_union_of_experiments(self, tmp_path):
        from repro.analysis import read_bench_rows, record_bench_rows

        path = tmp_path / "bench.json"
        # two bench scripts appending different experiments to one file:
        # each merge must preserve the other's rows
        record_bench_rows(path, [self._row(experiment="E4", n=2048)])
        record_bench_rows(path, [self._row(experiment="E12", n=4096)])
        record_bench_rows(path, [self._row(experiment="E4", n=2048, wall_s=9.0)])
        rows = read_bench_rows(path)
        assert {(r["experiment"], r["n"]) for r in rows} == {
            ("E4", 2048), ("E12", 4096)
        }
        by_exp = {r["experiment"]: r for r in rows}
        assert by_exp["E4"]["wall_s"] == 9.0

    def test_stored_rows_missing_fields_are_preserved_not_fatal(self, tmp_path):
        import json as _json

        from repro.analysis import read_bench_rows, record_bench_rows

        path = tmp_path / "bench.json"
        # a foreign/partial row already in the file (e.g. written by an
        # older tool version missing the trials field)
        path.write_text(_json.dumps([
            {"experiment": "E3", "n": 8192, "backend": "serial", "wall_s": 1.0},
            "not-a-dict-row",
        ]))
        out = record_bench_rows(path, [self._row()])
        keys = {(r.get("experiment"), r.get("n"), r.get("backend")) for r in out}
        assert ("E3", 8192, "serial") in keys      # partial row kept
        assert ("E2", 4096, "serial") in keys      # new row merged
        assert len(read_bench_rows(path)) == 2     # non-dict row dropped

    def test_new_rows_missing_fields_rejected(self, tmp_path):
        from repro.analysis import record_bench_rows

        with pytest.raises(TypeError):
            record_bench_rows(tmp_path / "bench.json",
                              [dict(experiment="E2", n=4096)])


class TestBenchDiff:
    """diff_bench_rows — the CI perf-ledger gate."""

    def _rows(self, wall_serial, wall_vec):
        from repro.analysis import bench_row

        return [
            bench_row("E4", 2048, "serial", wall_serial, 1, 100),
            bench_row("E4", 2048, "vectorized", wall_vec, 1, 100),
        ]

    def test_no_regression_within_tolerance(self):
        from repro.analysis.benchio import diff_bench_rows

        deltas, regressions = diff_bench_rows(
            self._rows(10.0, 1.0), self._rows(11.0, 1.1), max_regression=0.20
        )
        assert len(deltas) == 2
        assert regressions == []

    def test_regression_flagged_beyond_tolerance(self):
        from repro.analysis.benchio import diff_bench_rows

        deltas, regressions = diff_bench_rows(
            self._rows(10.0, 1.0), self._rows(10.0, 1.5), max_regression=0.20
        )
        assert len(regressions) == 1
        assert regressions[0]["backend"] == "vectorized"
        assert regressions[0]["ratio"] == 1.5

    def test_noise_floor_rows_never_flagged(self):
        from repro.analysis.benchio import diff_bench_rows

        # 3x slower, but both sides are sub-noise-floor micro measurements
        deltas, regressions = diff_bench_rows(
            self._rows(10.0, 0.004), self._rows(10.0, 0.012),
            max_regression=0.20, min_wall_s=0.05,
        )
        assert len(deltas) == 2
        assert regressions == []

    def test_unmatched_keys_skipped(self):
        from repro.analysis.benchio import bench_row, diff_bench_rows

        baseline = [bench_row("E2", 4096, "serial", 1.0, 1, 10)]
        current = [bench_row("E3", 8192, "serial", 9.0, 1, 10)]
        deltas, regressions = diff_bench_rows(baseline, current)
        assert deltas == [] and regressions == []

    def test_kernel_case_registry_covers_dynamic_experiments(self):
        from repro.analysis.benchio import (
            KERNEL_BENCH_CASES,
            KERNEL_BENCH_CASES_QUICK,
        )

        for cases in (KERNEL_BENCH_CASES, KERNEL_BENCH_CASES_QUICK):
            assert {"E2", "E3", "E4", "E8", "E12"} <= set(cases)
            for case in cases.values():
                assert {"n", "cells", "trials", "kwargs", "min_speedup"} <= set(case)
        # the acceptance bar of this PR: >= 5x on the E4 epoch trajectory
        assert KERNEL_BENCH_CASES["E4"]["min_speedup"] >= 5.0

    def test_current_rows_missing_wall_s_skipped_not_fatal(self):
        from repro.analysis.benchio import bench_row, diff_bench_rows

        baseline = [bench_row("E2", 4096, "serial", 1.0, 1, 10)]
        current = [{"experiment": "E2", "n": 4096, "backend": "serial"}]
        deltas, regressions = diff_bench_rows(baseline, current)
        assert deltas == [] and regressions == []


class TestSpeedupRows:
    """Machine-invariant speedup pairing (repro.analysis.benchio)."""

    def _rows(self, serial=2.0, vectorized=0.2):
        from repro.analysis.benchio import bench_row

        return [
            bench_row("E2", 4096, "serial", serial, 1, 100),
            bench_row("E2", 4096, "vectorized", vectorized, 1, 100),
        ]

    def test_pairs_serial_and_vectorized(self):
        from repro.analysis.benchio import speedup_rows

        (row,) = speedup_rows(self._rows())
        assert row["experiment"] == "E2" and row["n"] == 4096
        assert row["speedup"] == 10.0

    def test_single_backend_points_skipped(self):
        from repro.analysis.benchio import bench_row, speedup_rows

        rows = self._rows() + [bench_row("E3", 8192, "vectorized", 0.1, 12, 10)]
        assert len(speedup_rows(rows)) == 1  # E3 has no serial partner

    def test_calibration_and_foreign_backends_excluded(self):
        from repro.analysis.benchio import calibration_row, speedup_rows

        rows = self._rows() + [
            calibration_row(0.01),
            {"experiment": "E2", "n": 4096, "backend": "process", "wall_s": 1.0},
        ]
        (row,) = speedup_rows(rows)
        assert row["experiment"] == "E2"

    def test_zero_or_missing_wall_skipped(self):
        from repro.analysis.benchio import speedup_rows

        rows = self._rows(vectorized=0.0)
        assert speedup_rows(rows) == []


class TestDiffBenchRatios:
    """The heterogeneous-runner perf gate: speedup ratios, not wall clock."""

    def _rows(self, serial, vectorized):
        from repro.analysis.benchio import bench_row

        return [
            bench_row("E2", 4096, "serial", serial, 1, 100),
            bench_row("E2", 4096, "vectorized", vectorized, 1, 100),
        ]

    def test_uniform_machine_slowdown_is_not_a_regression(self):
        from repro.analysis.benchio import diff_bench_ratios

        # a 3x slower runner scales both backends; the ratio is unchanged
        baseline = self._rows(2.0, 0.2)
        current = self._rows(6.0, 0.6)
        deltas, regressions = diff_bench_ratios(baseline, current)
        assert len(deltas) == 1 and deltas[0]["ratio"] == 1.0
        assert regressions == []

    def test_vectorized_regression_flagged(self):
        from repro.analysis.benchio import diff_bench_ratios

        baseline = self._rows(2.0, 0.2)   # 10x
        current = self._rows(2.0, 0.4)    # 5x -> ratio 0.5
        deltas, regressions = diff_bench_ratios(baseline, current)
        assert len(regressions) == 1
        assert regressions[0]["speedup"] == 5.0
        assert regressions[0]["baseline_speedup"] == 10.0

    def test_noise_floor_reports_but_never_flags(self):
        from repro.analysis.benchio import diff_bench_ratios

        # microsecond-scale vectorized cells: ratio is scheduler jitter
        baseline = self._rows(0.004, 0.001)
        current = self._rows(0.004, 0.003)
        deltas, regressions = diff_bench_ratios(baseline, current)
        assert len(deltas) == 1 and regressions == []

    def test_new_measurement_points_skipped(self):
        from repro.analysis.benchio import diff_bench_ratios

        deltas, regressions = diff_bench_ratios([], self._rows(2.0, 0.2))
        assert deltas == [] and regressions == []


class TestCalibration:
    def test_measure_calibration_positive_and_fast(self):
        from repro.analysis.benchio import measure_calibration

        wall = measure_calibration(repeats=1)
        assert 0.0 < wall < 10.0

    def test_calibration_row_shape(self):
        from repro.analysis.benchio import CALIBRATION_EXPERIMENT, calibration_row

        row = calibration_row(0.0123456789)
        assert row["experiment"] == CALIBRATION_EXPERIMENT
        assert row["n"] == 0 and row["backend"] == "host"
        assert row["wall_s"] == 0.012346

    def test_e4_flagged_out_of_smoke_serial(self):
        from repro.analysis.benchio import KERNEL_BENCH_CASES

        # the ~47s/epoch serial reference runs only under --full-serial
        assert KERNEL_BENCH_CASES["E4"].get("serial_smoke") is False
        for name, case in KERNEL_BENCH_CASES.items():
            if name != "E4":
                assert case.get("serial_smoke", True) is True
