"""Unit tests: secure routing + majority filtering (repro.core.secure_routing)."""

import numpy as np
import pytest

from repro.core.costs import CostLedger
from repro.core.group_graph import GroupGraph
from repro.core.params import SystemParams
from repro.core.secure_routing import SecureRouter, majority_filter
from repro.inputgraph import make_input_graph


@pytest.fixture
def H():
    return make_input_graph("chord", np.random.default_rng(11).random(128))


@pytest.fixture
def params():
    return SystemParams(n=128, seed=0)


class TestMajorityFilter:
    def test_empty(self):
        assert majority_filter([]) is None

    def test_unanimous(self):
        assert majority_filter(["v"] * 5) == "v"

    def test_strict_majority_needed(self):
        assert majority_filter(["a", "a", "b", "b"]) is None

    def test_majority_wins(self):
        assert majority_filter(["a", "a", "a", "b", "b"]) == "a"

    def test_adversary_split_votes_cannot_win(self):
        # 3 good same value vs 2 bad split: good value still majority
        assert majority_filter(["v", "v", "v", "x", "y"]) == "v"

    def test_exactly_half_is_dropped(self):
        assert majority_filter(["v", "x"]) is None


class TestSecureRouter:
    def test_all_blue_delivers(self, H, params):
        gg = GroupGraph(H, params, red=np.zeros(H.n, dtype=bool))
        router = SecureRouter(gg)
        out = router.search(3, 0.7, payload="DATA")
        assert out.delivered and not out.corrupted
        assert out.hops >= 0
        assert out.messages > 0

    def test_red_on_path_corrupts(self, H, params):
        path, _ = H.route(3, 0.7)
        if len(path) >= 2:
            red = np.zeros(H.n, dtype=bool)
            red[path[1]] = True
            gg = GroupGraph(H, params, red=red)
            router = SecureRouter(gg)
            out = router.search(3, 0.7)
            assert out.corrupted and not out.delivered

    def test_red_source_corrupts(self, H, params):
        red = np.zeros(H.n, dtype=bool)
        red[3] = True
        gg = GroupGraph(H, params, red=red)
        out = SecureRouter(gg).search(3, 0.7)
        assert out.corrupted

    def test_minority_bad_members_filtered(self, H, params):
        """Groups with a bad minority still deliver (the whole point)."""
        from repro.core.groups import build_groups_fast, classify_groups

        rng = np.random.default_rng(0)
        bad = rng.random(H.n) < 0.05
        gs = build_groups_fast(H.ring, params, rng)
        q = classify_groups(gs, bad, params)
        gg = GroupGraph(H, params, red=q.is_bad.copy(), groups=gs)
        router = SecureRouter(gg, bad)
        delivered = sum(
            router.search(int(rng.integers(H.n)), float(rng.random())).delivered
            for _ in range(30)
        )
        assert delivered >= 25

    def test_messages_charged_to_ledger(self, H, params):
        gg = GroupGraph(H, params, red=np.zeros(H.n, dtype=bool))
        led = CostLedger()
        out = SecureRouter(gg).search(3, 0.7, ledger=led)
        assert led.messages.get("routing", 0) == out.messages

    def test_message_count_is_size_product_sum(self, H, params):
        sizes = np.full(H.n, 4, dtype=np.int64)
        gg = GroupGraph(H, params, red=np.zeros(H.n, dtype=bool), group_sizes=sizes)
        out = SecureRouter(gg).search(3, 0.7)
        assert out.messages == out.hops * 16

    def test_search_cost_batch(self, H, params):
        gg = GroupGraph(H, params, red=np.zeros(H.n, dtype=bool))
        per_search, led = SecureRouter(gg).search_cost_batch(
            200, np.random.default_rng(1)
        )
        s = params.group_solicit_size
        # per-search cost ~ hops * |G|^2
        assert per_search > s * s  # at least one hop
        assert led.messages["routing"] == pytest.approx(per_search * 200)


class TestChannel:
    def test_transmit_correct_with_good_majority(self):
        from repro.agreement import transmit

        out = transmit(5, 4, 8, "v")
        assert out.correct and out.messages == 72

    def test_transmit_fails_with_bad_majority(self):
        from repro.agreement import transmit

        out = transmit(4, 5, 8, "v")
        assert not out.correct
