"""Unit tests: secure routing + majority filtering (repro.core.secure_routing)."""

import numpy as np
import pytest

from repro.core.costs import CostLedger
from repro.core.group_graph import GroupGraph
from repro.core.params import SystemParams
from repro.core.secure_routing import SecureRouter, majority_filter
from repro.inputgraph import make_input_graph


@pytest.fixture
def H():
    return make_input_graph("chord", np.random.default_rng(11).random(128))


@pytest.fixture
def params():
    return SystemParams(n=128, seed=0)


class TestMajorityFilter:
    def test_empty(self):
        assert majority_filter([]) is None

    def test_unanimous(self):
        assert majority_filter(["v"] * 5) == "v"

    def test_strict_majority_needed(self):
        assert majority_filter(["a", "a", "b", "b"]) is None

    def test_majority_wins(self):
        assert majority_filter(["a", "a", "a", "b", "b"]) == "a"

    def test_adversary_split_votes_cannot_win(self):
        # 3 good same value vs 2 bad split: good value still majority
        assert majority_filter(["v", "v", "v", "x", "y"]) == "v"

    def test_exactly_half_is_dropped(self):
        assert majority_filter(["v", "x"]) is None

    # -- the pinned edge-case contract (empty / exact ties) -------------------

    def test_single_sender_wins(self):
        assert majority_filter(["v"]) == "v"

    def test_exact_tie_two_values_even_count(self):
        # most frequent value reaches exactly half: dropped, regardless of
        # insertion order
        assert majority_filter(["a", "a", "b", "b"]) is None
        assert majority_filter(["b", "b", "a", "a"]) is None

    def test_plurality_without_majority_dropped(self):
        # 2-2-1 split: 'a' is the unique plurality but not a strict majority
        assert majority_filter(["a", "a", "b", "b", "c"]) is None

    def test_accepts_any_iterable(self):
        assert majority_filter(iter(["v", "v", "x"])) == "v"
        assert majority_filter(()) is None

    def test_matches_vectorized_keep_rule(self):
        """For (good, bad) vote splits the scalar filter must agree with the
        kernel's precomputed ``2 * bad < size`` survival test everywhere —
        including the rounding ties."""
        for size in range(1, 12):
            for bad in range(0, size + 1):
                votes = ["v"] * (size - bad) + ["ADV"] * bad
                kept = majority_filter(votes)
                if 2 * bad < size:
                    assert kept == "v", (size, bad)
                else:
                    assert kept != "v", (size, bad)


class TestSecureRouter:
    def test_all_blue_delivers(self, H, params):
        gg = GroupGraph(H, params, red=np.zeros(H.n, dtype=bool))
        router = SecureRouter(gg)
        out = router.search(3, 0.7, payload="DATA")
        assert out.delivered and not out.corrupted
        assert out.hops >= 0
        assert out.messages > 0

    def test_red_on_path_corrupts(self, H, params):
        path, _ = H.route(3, 0.7)
        if len(path) >= 2:
            red = np.zeros(H.n, dtype=bool)
            red[path[1]] = True
            gg = GroupGraph(H, params, red=red)
            router = SecureRouter(gg)
            out = router.search(3, 0.7)
            assert out.corrupted and not out.delivered

    def test_red_source_corrupts(self, H, params):
        red = np.zeros(H.n, dtype=bool)
        red[3] = True
        gg = GroupGraph(H, params, red=red)
        out = SecureRouter(gg).search(3, 0.7)
        assert out.corrupted

    def test_minority_bad_members_filtered(self, H, params):
        """Groups with a bad minority still deliver (the whole point)."""
        from repro.core.groups import build_groups_fast, classify_groups

        rng = np.random.default_rng(0)
        bad = rng.random(H.n) < 0.05
        gs = build_groups_fast(H.ring, params, rng)
        q = classify_groups(gs, bad, params)
        gg = GroupGraph(H, params, red=q.is_bad.copy(), groups=gs)
        router = SecureRouter(gg, bad)
        delivered = sum(
            router.search(int(rng.integers(H.n)), float(rng.random())).delivered
            for _ in range(30)
        )
        assert delivered >= 25

    def test_messages_charged_to_ledger(self, H, params):
        gg = GroupGraph(H, params, red=np.zeros(H.n, dtype=bool))
        led = CostLedger()
        out = SecureRouter(gg).search(3, 0.7, ledger=led)
        assert led.messages.get("routing", 0) == out.messages

    def test_message_count_is_size_product_sum(self, H, params):
        sizes = np.full(H.n, 4, dtype=np.int64)
        gg = GroupGraph(H, params, red=np.zeros(H.n, dtype=bool), group_sizes=sizes)
        out = SecureRouter(gg).search(3, 0.7)
        assert out.messages == out.hops * 16

    def test_search_cost_batch(self, H, params):
        gg = GroupGraph(H, params, red=np.zeros(H.n, dtype=bool))
        per_search, led = SecureRouter(gg).search_cost_batch(
            200, np.random.default_rng(1)
        )
        s = params.group_solicit_size
        # per-search cost ~ hops * |G|^2
        assert per_search > s * s  # at least one hop
        assert led.messages["routing"] == pytest.approx(per_search * 200)


class TestSearchBatch:
    """The lockstep kernel must agree with the scalar search probe-for-probe."""

    def _routers(self, H, params, seed=0, pf=0.08, member_level=False):
        rng = np.random.default_rng(seed)
        if member_level:
            from repro.core.groups import build_groups_fast, classify_groups

            bad = rng.random(H.n) < 0.10
            gs = build_groups_fast(H.ring, params, rng)
            q = classify_groups(gs, bad, params)
            gg = GroupGraph(H, params, red=q.is_bad.copy(), groups=gs)
            return SecureRouter(gg, bad)
        red = rng.random(H.n) < pf
        return SecureRouter(GroupGraph(H, params, red=red))

    @pytest.mark.parametrize("member_level", [False, True])
    def test_parity_with_scalar(self, H, params, member_level):
        router = self._routers(H, params, member_level=member_level)
        rng = np.random.default_rng(1)
        src = rng.integers(0, H.n, size=200)
        tgt = rng.random(200)
        out = router.search_batch(src, tgt)
        for i in range(200):
            scalar = router.search(int(src[i]), float(tgt[i]))
            assert bool(out.delivered[i]) == scalar.delivered, i
            assert bool(out.corrupted[i]) == scalar.corrupted, i
            assert int(out.hops[i]) == scalar.hops, i
            assert int(out.messages[i]) == scalar.messages, i
            assert int(out.first_blocked[i]) == scalar.first_blocked, i

    def test_all_blue_batch_delivers(self, H, params):
        gg = GroupGraph(H, params, red=np.zeros(H.n, dtype=bool))
        out = SecureRouter(gg).search_batch(
            np.arange(50) % H.n, np.linspace(0.0, 0.99, 50)
        )
        assert out.delivered.all() and not out.corrupted.any()
        assert (out.first_blocked == (out.paths != -1).sum(axis=1)).all()

    def test_ledger_charged_total(self, H, params):
        from repro.core.costs import CostLedger

        gg = GroupGraph(H, params, red=np.zeros(H.n, dtype=bool))
        led = CostLedger()
        out = SecureRouter(gg).search_batch(
            np.arange(20), np.linspace(0.0, 0.95, 20), ledger=led
        )
        assert led.messages["routing"] == int(out.messages.sum())

    def test_search_path_mask_prefix(self, H, params):
        """The mask covers exactly the prefix through the first red group."""
        path, _ = H.route(3, 0.7)
        assert len(path) >= 2
        red = np.zeros(H.n, dtype=bool)
        red[path[1]] = True
        gg = GroupGraph(H, params, red=red)
        out = SecureRouter(gg).search_batch(np.array([3]), np.array([0.7]))
        mask = out.search_path_mask()
        assert int(out.first_blocked[0]) == 1
        assert mask[0, :2].all() and not mask[0, 2:].any()

    def test_failure_rate_property(self, H, params):
        gg = GroupGraph(H, params, red=np.ones(H.n, dtype=bool))
        out = SecureRouter(gg).search_batch(np.array([0, 1]), np.array([0.2, 0.9]))
        assert out.failure_rate == 1.0


class TestChannel:
    def test_transmit_correct_with_good_majority(self):
        from repro.agreement import transmit

        out = transmit(5, 4, 8, "v")
        assert out.correct and out.messages == 72

    def test_transmit_fails_with_bad_majority(self):
        from repro.agreement import transmit

        out = transmit(4, 5, 8, "v")
        assert not out.correct
