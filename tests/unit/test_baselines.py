"""Unit tests: baselines (repro.baselines)."""

import numpy as np
import pytest

from repro.adversary import UniformAdversary
from repro.baselines import (
    CuckooSimulator,
    build_logn_static,
    measure_single_id,
)
from repro.core.params import SystemParams
from repro.inputgraph import make_input_graph


@pytest.fixture
def setup():
    rng = np.random.default_rng(8)
    adv = UniformAdversary(0.05)
    ids, bad = adv.population(256, rng)
    H = make_input_graph("chord", ids)
    return H, bad, SystemParams(n=256, beta=0.05, seed=0), rng


class TestLogNBaseline:
    def test_group_size_logarithmic(self, setup):
        H, bad, params, rng = setup
        bl = build_logn_static(H, params, bad, rng)
        assert bl.group_size >= params.ln_n
        assert bl.group_size > params.group_solicit_size

    def test_all_groups_good_whp(self, setup):
        H, bad, params, rng = setup
        bl = build_logn_static(H, params, bad, rng)
        # the classic regime: eps = 1/poly(n) => essentially zero red groups
        assert bl.fraction_red <= 0.01

    def test_size_multiplier(self, setup):
        H, bad, params, rng = setup
        bl = build_logn_static(H, params, bad, rng, size_multiplier=0.5)
        assert bl.group_size == max(4, round(0.5 * params.logn_group_size))


class TestSingleId:
    def test_failure_tracks_prediction(self, setup):
        H, bad, params, rng = setup
        stats = measure_single_id(H, params, bad, 4000, rng)
        assert stats.failure_rate == pytest.approx(stats.predicted_failure, abs=0.12)

    def test_failure_grows_with_beta(self, setup):
        H, _, params, rng = setup
        lo = measure_single_id(
            H, params, np.random.default_rng(0).random(H.n) < 0.02, 3000, rng
        )
        hi = measure_single_id(
            H, params, np.random.default_rng(0).random(H.n) < 0.2, 3000, rng
        )
        assert hi.failure_rate > lo.failure_rate

    def test_cheap_messages(self, setup):
        H, bad, params, rng = setup
        stats = measure_single_id(H, params, bad, 1000, rng)
        assert stats.messages_per_search == stats.mean_hops


class TestCuckoo:
    def test_counters_consistent_after_run(self):
        sim = CuckooSimulator(n=512, beta=0.05, group_size=16, k=2, seed=0)
        sim.run(500, check_every=100)
        # recompute from scratch and compare with incremental counters
        total = np.bincount(sim.group_of, minlength=sim.n_groups)
        bad = np.bincount(
            sim.group_of, weights=sim.is_bad.astype(float), minlength=sim.n_groups
        ).astype(int)
        assert np.array_equal(total, sim.group_total)
        assert np.array_equal(bad, sim.group_bad)

    def test_population_conserved(self):
        sim = CuckooSimulator(n=512, beta=0.05, group_size=16, k=2, seed=0)
        sim.run(300, check_every=50)
        assert sim.group_total.sum() == 512
        assert sim.is_bad.sum() == round(0.05 * 512)

    def test_no_bad_ids_never_fails(self):
        sim = CuckooSimulator(n=256, beta=0.0, group_size=16, seed=0)
        out = sim.run(100)
        assert not out.failed

    def test_bigger_groups_survive_longer(self):
        survived = {}
        for gs in (8, 32):
            sim = CuckooSimulator(
                n=2048, beta=0.01, group_size=gs, k=2, threshold=1 / 3, seed=3
            )
            survived[gs] = sim.run(4000, check_every=32).events_survived
        assert survived[32] > survived[8]

    def test_commensal_mode_runs(self):
        sim = CuckooSimulator(
            n=512, beta=0.02, group_size=16, k=3, commensal=True, seed=1
        )
        out = sim.run(300, check_every=50)
        assert out.commensal
        assert out.events_survived > 0

    def test_result_fields(self):
        sim = CuckooSimulator(n=256, beta=0.02, group_size=16, seed=0)
        out = sim.run(50)
        assert out.n == 256 and out.group_size == 16
        assert 0.0 <= out.max_bad_fraction <= 1.0


class TestCuckooEntropyAndKernels:
    """The explicit-rng seam (ISSUE-4 satellite): an externally spawned
    stream is the single entropy source, and the kernel choice never
    changes a trajectory."""

    def test_explicit_rng_overrides_seed(self):
        a = CuckooSimulator(n=256, beta=0.05, group_size=16,
                            rng=np.random.default_rng(123), seed=999)
        b = CuckooSimulator(n=256, beta=0.05, group_size=16,
                            rng=np.random.default_rng(123), seed=0)
        assert a.run(200) == b.run(200)

    def test_seed_fallback_without_rng(self):
        a = CuckooSimulator(n=256, beta=0.05, group_size=16, seed=7)
        b = CuckooSimulator(n=256, beta=0.05, group_size=16, seed=7)
        assert a.run(200) == b.run(200)

    def test_unknown_kernel_rejected(self):
        import pytest as _pytest

        with _pytest.raises(ValueError, match="kernel"):
            CuckooSimulator(n=256, beta=0.05, group_size=16, kernel="bogus")

    def test_kernels_share_one_trajectory(self):
        outs = {}
        for kernel in ("serial", "vectorized"):
            sim = CuckooSimulator(
                n=512, beta=0.04, group_size=16, k=2, threshold=1 / 3,
                rng=np.random.default_rng(42), kernel=kernel,
            )
            outs[kernel] = (sim.run(500), sim.group_total.copy(),
                            sim.group_bad.copy())
        assert outs["serial"][0] == outs["vectorized"][0]
        assert np.array_equal(outs["serial"][1], outs["vectorized"][1])
        assert np.array_equal(outs["serial"][2], outs["vectorized"][2])

    def test_vectorized_counters_consistent_after_run(self):
        sim = CuckooSimulator(n=512, beta=0.05, group_size=16, k=2, seed=0,
                              kernel="vectorized")
        sim.run(500, check_every=100)
        total = np.bincount(sim.group_of, minlength=sim.n_groups)
        bad = np.bincount(
            sim.group_of, weights=sim.is_bad.astype(float), minlength=sim.n_groups
        ).astype(int)
        assert np.array_equal(total, sim.group_total)
        assert np.array_equal(bad, sim.group_bad)
