"""Unit tests: input-graph topologies and P1-P4 (repro.inputgraph)."""

import numpy as np
import pytest

from repro.idspace.ring import Ring
from repro.inputgraph import (
    PADDING,
    TOPOLOGIES,
    make_input_graph,
    validate_properties,
)

ALL = sorted(TOPOLOGIES)


@pytest.fixture(scope="module")
def rings():
    rng = np.random.default_rng(42)
    return {n: Ring(rng.random(n)) for n in (64, 256)}


@pytest.fixture(scope="module")
def graphs(rings):
    return {
        (name, n): make_input_graph(name, ring)
        for name in ALL
        for n, ring in rings.items()
    }


@pytest.mark.parametrize("name", ALL)
class TestRoutingCorrectness:
    def test_routes_resolve(self, graphs, name):
        g = graphs[(name, 256)]
        rng = np.random.default_rng(1)
        batch = g.random_route_batch(500, rng)
        assert batch.resolved.all(), f"{name}: unresolved searches"

    def test_path_starts_at_source(self, graphs, name):
        g = graphs[(name, 256)]
        rng = np.random.default_rng(2)
        src = rng.integers(0, g.n, size=50)
        tgt = rng.random(50)
        batch = g.route_many(src, tgt)
        assert (batch.paths[:, 0] == src).all()

    def test_path_ends_at_responsible(self, graphs, name):
        g = graphs[(name, 256)]
        rng = np.random.default_rng(3)
        src = rng.integers(0, g.n, size=50)
        tgt = rng.random(50)
        batch = g.route_many(src, tgt)
        for i in range(50):
            path = batch.paths[i]
            last = path[path != PADDING][-1]
            assert last == batch.responsible[i]

    def test_responsible_is_successor(self, graphs, name):
        g = graphs[(name, 256)]
        pts = np.linspace(0.01, 0.99, 17)
        batch = g.route_many(np.zeros(17, dtype=int), pts)
        expect = g.ring.successor_index_many(pts)
        assert (batch.responsible == expect).all()

    def test_self_search(self, graphs, name):
        """Searching for a point you own terminates immediately-ish."""
        g = graphs[(name, 64)]
        own = float(g.ring.ids[5])
        path, ok = g.route(5, own)
        assert ok
        assert path[-1] == 5

    def test_hop_counts_logarithmic(self, graphs, name):
        g = graphs[(name, 256)]
        rng = np.random.default_rng(4)
        batch = g.random_route_batch(400, rng)
        assert batch.hop_counts.max() <= 4 * np.log2(256) + 8


@pytest.mark.parametrize("name", ALL)
class TestTopology:
    def test_neighbors_sorted_unique_no_self(self, graphs, name):
        g = graphs[(name, 256)]
        for i in range(0, 256, 37):
            nb = g.neighbors(i)
            assert (np.diff(nb) > 0).all()
            assert i not in nb

    def test_verify_link_accepts_real_neighbors(self, graphs, name):
        g = graphs[(name, 64)]
        for i in range(0, 64, 11):
            for u in g.neighbors(i)[:3]:
                assert g.verify_link(i, int(u))

    def test_verify_link_rejects_non_neighbors(self, graphs, name):
        g = graphs[(name, 256)]
        rng = np.random.default_rng(5)
        rejected = 0
        for _ in range(50):
            w = int(rng.integers(256))
            u = int(rng.integers(256))
            if u != w and not g.verify_link(w, u):
                rejected += 1
        assert rejected > 10  # random pairs are mostly non-neighbors

    def test_degrees_positive(self, graphs, name):
        g = graphs[(name, 256)]
        assert (g.degrees() >= 2).all()  # at least ring succ+pred

    def test_csr_consistency(self, graphs, name):
        g = graphs[(name, 256)]
        indptr, indices = g.neighbor_lists()
        assert indptr[0] == 0
        assert indptr[-1] == indices.size
        assert (indices >= 0).all() and (indices < g.n).all()

    def test_in_neighbor_counts(self, graphs, name):
        g = graphs[(name, 256)]
        cnt = g.in_neighbors_count()
        assert cnt.sum() == g.neighbor_lists()[1].size


@pytest.mark.parametrize("name", ALL)
def test_properties_p1_p4(graphs, name):
    g = graphs[(name, 256)]
    rep = validate_properties(g, probes=4000, rng=np.random.default_rng(6))
    assert rep.ok(), f"{name}: {rep.satisfied}"
    assert len(rep.rows()) == 4


class TestChordSpecifics:
    def test_finger_table_shape(self, rings):
        g = make_input_graph("chord", rings[256])
        ft = g.finger_table()
        assert ft.shape == (256, g.finger_count + 2)

    def test_fingers_are_successors_of_offsets(self, rings):
        g = make_input_graph("chord", rings[64])
        ring = g.ring
        for j in range(g.finger_count):
            pt = (ring.ids[10] + 2.0 ** -(j + 1)) % 1.0
            assert g.finger_table()[10, j] == ring.successor_index(pt)

    def test_log_degree(self, rings):
        g = make_input_graph("chord", rings[256])
        assert g.degrees().mean() <= 3 * np.log2(256)


class TestHalvingSpecifics:
    def test_walk_points_contract(self, rings):
        g = make_input_graph("distance-halving", rings[64])
        src = np.array([0.7])
        tgt = np.array([0.3125])
        pts = g.walk_points(src, tgt)
        assert abs(pts[0, -1] - tgt[0]) <= g.base ** -float(g.walk_steps) + 1e-12

    def test_base_three_shorter_walk(self, rings):
        h2 = make_input_graph("distance-halving", rings[256])
        h3 = make_input_graph("kautz", rings[256])
        assert h3.walk_steps < h2.walk_steps

    def test_invalid_base(self, rings):
        from repro.inputgraph.distance_halving import DistanceHalvingGraph

        with pytest.raises(ValueError):
            DistanceHalvingGraph(rings[64], base=1)


def test_make_input_graph_unknown_name(rings):
    with pytest.raises(ValueError):
        make_input_graph("hypercube", rings[64])


def test_make_input_graph_accepts_array():
    g = make_input_graph("chord", np.random.default_rng(0).random(32))
    assert g.n == 32
