"""Unit tests: PoW puzzles and identity lifecycle (repro.pow)."""

import numpy as np
import pytest

from repro.idspace.hashing import OracleSuite
from repro.pow.identity import IdentityRegistry
from repro.pow.puzzles import PuzzleScheme


@pytest.fixture
def scheme():
    return PuzzleScheme(OracleSuite(seed=1), epoch_length=200)


class TestScheme:
    def test_tau_from_epoch_length(self, scheme):
        assert scheme.tau == pytest.approx(2.0 / 200)

    def test_tau_capped_at_one(self):
        s = PuzzleScheme(OracleSuite(0), epoch_length=2, hash_rate=0.5)
        assert s.tau <= 1.0

    def test_epoch_length_validation(self):
        with pytest.raises(ValueError):
            PuzzleScheme(OracleSuite(0), epoch_length=1)

    def test_expected_solutions(self, scheme):
        assert scheme.expected_solutions(10, 100) == pytest.approx(10 * 100 * scheme.tau)


class TestOracleMode:
    def test_mint_produces_valid_solutions(self, scheme):
        rng = np.random.default_rng(0)
        sols = scheme.mint_oracle(r_string=0xBEEF, trials=2000, rng=rng)
        assert len(sols) > 0
        for s in sols[:3]:
            assert scheme.verify(s.id_value, s, 0xBEEF)

    def test_solution_count_near_expectation(self, scheme):
        rng = np.random.default_rng(1)
        trials = 5000
        sols = scheme.mint_oracle(r_string=1, trials=trials, rng=rng)
        expect = trials * scheme.tau
        assert 0.4 * expect <= len(sols) <= 2.0 * expect

    def test_verify_rejects_wrong_id(self, scheme):
        rng = np.random.default_rng(2)
        sols = scheme.mint_oracle(r_string=7, trials=2000, rng=rng, max_solutions=1)
        assert sols
        assert not scheme.verify(0.123456, sols[0], 7)

    def test_verify_rejects_stale_string(self, scheme):
        """Expiry: IDs signed under an old global string fail verification."""
        rng = np.random.default_rng(3)
        sols = scheme.mint_oracle(r_string=7, trials=2000, rng=rng, max_solutions=1)
        assert sols
        assert not scheme.verify(sols[0].id_value, sols[0], 8)

    def test_max_solutions_stops_early(self, scheme):
        rng = np.random.default_rng(4)
        sols = scheme.mint_oracle(r_string=1, trials=10_000, rng=rng, max_solutions=2)
        assert len(sols) == 2


class TestFastMode:
    def test_count_matches_binomial_mean(self, scheme):
        rng = np.random.default_rng(0)
        counts = [scheme.mint_fast(10, 200, rng).size for _ in range(50)]
        assert np.mean(counts) == pytest.approx(10 * 200 * scheme.tau, rel=0.2)

    def test_fast_matches_oracle_distribution(self, scheme):
        """The sampling shortcut and the literal loop agree on count
        statistics — the cross-check promised in the module docstring."""
        rng = np.random.default_rng(5)
        oracle_counts = [
            len(scheme.mint_oracle(9, trials=1000, rng=rng)) for _ in range(30)
        ]
        fast_counts = [scheme.mint_fast(1, 1000, rng).size for _ in range(30)]
        assert np.mean(oracle_counts) == pytest.approx(np.mean(fast_counts), rel=0.35)

    def test_ids_in_range(self, scheme):
        ids = scheme.mint_fast(50, 200, np.random.default_rng(1))
        assert (ids >= 0).all() and (ids < 1).all()

    def test_zero_compute_zero_ids(self, scheme):
        assert scheme.mint_fast(0, 200, np.random.default_rng(0)).size == 0

    def test_one_hash_confined_to_arc(self, scheme):
        ids = scheme.mint_fast_one_hash(
            50, 400, np.random.default_rng(2), arc_start=0.7, arc_width=0.1
        )
        assert ids.size > 0
        assert (np.mod(ids - 0.7, 1.0) < 0.1).all()

    def test_one_hash_same_rate(self, scheme):
        rng = np.random.default_rng(3)
        a = [scheme.mint_fast(20, 200, rng).size for _ in range(40)]
        b = [scheme.mint_fast_one_hash(20, 200, rng).size for _ in range(40)]
        assert np.mean(a) == pytest.approx(np.mean(b), rel=0.3)


class TestRegistry:
    def test_mint_epoch_counts(self):
        scheme = PuzzleScheme(OracleSuite(1), epoch_length=1000)
        reg = IdentityRegistry(scheme, n=1000, beta=0.1)
        ms = reg.mint_epoch(1, np.random.default_rng(0))
        assert ms.n_good == 900
        assert 80 <= ms.n_bad <= 230  # ~1.5 * beta * n with noise

    def test_mint_epoch_one_hash_attack(self):
        scheme = PuzzleScheme(OracleSuite(1), epoch_length=1000)
        reg = IdentityRegistry(scheme, n=1000, beta=0.1)
        ms = reg.mint_epoch(
            1, np.random.default_rng(0), one_hash_attack=True, attack_arc=(0.1, 0.02)
        )
        assert (np.mod(ms.bad_ids - 0.1, 1.0) < 0.02).all()

    def test_card_lifecycle(self):
        scheme = PuzzleScheme(OracleSuite(1), epoch_length=200)
        reg = IdentityRegistry(scheme, n=100, beta=0.1)
        reg.set_epoch_string(1, 111)
        reg.set_epoch_string(2, 222)
        card = reg.mint_card(1, np.random.default_rng(0))
        assert card is not None
        assert reg.verify_card(card, 1)
        assert not reg.verify_card(card, 2)  # expired
        assert not reg.verify_card(card, 3)  # no string adopted

    def test_string_for_missing_epoch(self):
        scheme = PuzzleScheme(OracleSuite(1), epoch_length=200)
        reg = IdentityRegistry(scheme, n=100, beta=0.1)
        with pytest.raises(KeyError):
            reg.string_for(5)


class TestBatchCountKernels:
    """E8's window kernels: batch draws == per-window serial oracle."""

    def _scheme(self, T=1024):
        from repro.idspace.hashing import OracleSuite

        return PuzzleScheme(OracleSuite(), epoch_length=T)

    def test_mint_fast_count_matches_mint_fast_size(self):
        scheme = self._scheme()
        a = np.random.default_rng(9)
        b = np.random.default_rng(9)
        # the count draw is the same Binomial mint_fast opens with
        assert scheme.mint_fast_count(20, 500, a) == scheme.mint_fast(20, 500, b).size

    def test_mint_count_windows_matches_serial_loop(self):
        scheme = self._scheme()
        a = np.random.default_rng(3)
        b = np.random.default_rng(3)
        serial = [scheme.mint_fast_count(15, 700, a) for _ in range(25)]
        batch = scheme.mint_count_windows(15, 700, b, 25)
        assert np.array_equal(np.asarray(serial), batch)
        assert a.bit_generator.state == b.bit_generator.state

    def test_mint_count_windows_zero_cases(self):
        scheme = self._scheme()
        rng = np.random.default_rng(0)
        assert scheme.mint_count_windows(10, 100, rng, 0).size == 0
        zero_power = scheme.mint_count_windows(0, 100, rng, 5)
        assert zero_power.shape == (5,) and not zero_power.any()

    def test_uniformity_windows_matches_sequential_pair(self):
        scheme = self._scheme()
        a = np.random.default_rng(7)
        b = np.random.default_rng(7)
        two_ref = scheme.mint_fast(30, 4000, a)
        one_ref = scheme.mint_fast_one_hash(30, 4000, a, arc_start=0.1,
                                            arc_width=0.05)
        two, one = scheme.uniformity_windows(30, 4000, b, arc_start=0.1,
                                             arc_width=0.05)
        assert np.array_equal(two_ref, two)
        assert np.array_equal(one_ref, one)
