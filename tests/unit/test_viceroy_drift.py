"""Unit tests: Viceroy topology specifics + EpochSimulator size drift."""

import numpy as np
import pytest

from repro.churn import UniformChurn
from repro.core.dynamic import EpochSimulator
from repro.core.params import SystemParams
from repro.idspace.ring import Ring
from repro.inputgraph import make_input_graph
from repro.inputgraph.viceroy import ViceroyGraph


@pytest.fixture(scope="module")
def graph():
    return make_input_graph("viceroy", np.random.default_rng(19).random(512))


class TestViceroy:
    def test_levels_in_range(self, graph):
        assert (graph.levels >= 1).all()
        assert (graph.levels <= graph.level_count).all()

    def test_no_empty_level(self, graph):
        for lvl in range(1, graph.level_count + 1):
            assert (graph.levels == lvl).any()

    def test_levels_deterministic_and_verifiable(self):
        """P3: any party can recompute the level assignment from the ID."""
        ring = Ring(np.random.default_rng(19).random(128))
        a = ViceroyGraph(ring, level_seed=5)
        b = ViceroyGraph(ring, level_seed=5)
        assert np.array_equal(a.levels, b.levels)

    def test_constant_degree(self, graph):
        # butterfly edges: 2 ring + 2 level ring + 2 down + 1 up, plus
        # reverse listings => O(1) mean
        assert graph.degrees().mean() < 12

    def test_hops_logarithmic(self, graph):
        batch = graph.random_route_batch(800, np.random.default_rng(3))
        assert batch.resolved.all()
        assert batch.hop_counts.mean() < 3 * np.log2(512)

    def test_nearest_at_level(self, graph):
        lvl = int(graph.levels[0])
        idx = graph._nearest_at_level(lvl, 0.5)
        assert graph.levels[idx] == lvl
        # no same-level node strictly between 0.5 and the returned node
        pos = graph.ring.ids[graph._level_nodes[lvl]]
        d = (graph.ring.ids[idx] - 0.5) % 1.0
        others = (pos - 0.5) % 1.0
        assert (others[others > 0] >= d - 1e-15).all()

    def test_descent_reduces_distance(self, graph):
        """The butterfly descent makes monotone forward progress."""
        rng = np.random.default_rng(4)
        for _ in range(20):
            src = int(rng.integers(512))
            tgt = float(rng.random())
            path, ok = graph.route(src, tgt)
            assert ok


class TestSizeDrift:
    def test_schedule_changes_population(self):
        params = SystemParams(n=128, beta=0.05, seed=2)
        sim = EpochSimulator(
            params,
            probes=300,
            size_schedule=lambda e: 128 if e % 2 == 0 else 256,
            rng=np.random.default_rng(2),
        )
        r1 = sim.step()  # epoch 1 -> 256
        r2 = sim.step()  # epoch 2 -> 128
        assert r1.build_1.n_new == 256
        assert r2.build_1.n_new == 128

    def test_drift_keeps_robustness(self):
        params = SystemParams(n=128, beta=0.05, d1=2.5, d2=10.0, seed=3)
        sim = EpochSimulator(
            params,
            churn=UniformChurn(rate=0.05),
            probes=500,
            size_schedule=lambda e: [128, 256, 128, 64][e % 4],
            rng=np.random.default_rng(3),
        )
        for rep in sim.run(4):
            assert rep.fraction_red < 0.15

    def test_degenerate_schedule_rejected(self):
        params = SystemParams(n=128, seed=0)
        with pytest.raises(ValueError):
            # the epoch-0 population already consults the schedule
            EpochSimulator(
                params, probes=200, size_schedule=lambda e: 4,
                rng=np.random.default_rng(0),
            )
