"""Unit tests: churn models (repro.churn)."""

import numpy as np
import pytest

from repro.churn import EventKind, EventStream, TargetedChurn, UniformChurn
from repro.core.dynamic import EpochSimulator
from repro.core.params import SystemParams


@pytest.fixture
def sim():
    return EpochSimulator(SystemParams(n=128, beta=0.05, seed=2), probes=300)


class TestUniformChurn:
    def test_rate_respected(self, sim):
        churn = UniformChurn(rate=0.1)
        n_dep = churn.apply(sim.pair, sim.params, np.random.default_rng(0))
        good = int((~sim.pair.bad_mask).sum())
        assert 0 < n_dep < 0.3 * good

    def test_rate_clipped_to_model_cap(self, sim):
        churn = UniformChurn(rate=0.9)  # way above eps'/2
        cap = sim.params.churn_slack / 2.0
        dep = churn.epoch_departures(sim.pair, sim.params, np.random.default_rng(0))
        good = int((~sim.pair.bad_mask).sum())
        assert dep.size < (cap + 0.1) * good

    def test_violation_mode_exceeds_cap(self, sim):
        churn = UniformChurn(rate=0.9, allow_violation=True)
        dep = churn.epoch_departures(sim.pair, sim.params, np.random.default_rng(0))
        good = int((~sim.pair.bad_mask).sum())
        assert dep.size > 0.5 * good

    def test_only_good_ids_depart(self, sim):
        churn = UniformChurn(rate=0.2)
        dep = churn.epoch_departures(sim.pair, sim.params, np.random.default_rng(0))
        assert not sim.pair.bad_mask[dep].any()

    def test_departures_flagged_and_reclassified(self, sim):
        churn = UniformChurn(rate=0.1)
        churn.apply(sim.pair, sim.params, np.random.default_rng(0))
        assert sim.pair.ring_departed.any()

    def test_heavy_violation_turns_groups_red(self, sim):
        """Failure injection: churn beyond eps'/2 breaks the guarantee."""
        churn = UniformChurn(rate=0.95, allow_violation=True)
        churn.apply(sim.pair, sim.params, np.random.default_rng(0))
        assert sim.pair.fraction_red() > 0.5


class TestTargetedChurn:
    def test_budget_respected(self, sim):
        churn = TargetedChurn()
        dep = churn.epoch_departures(sim.pair, sim.params, np.random.default_rng(0))
        cap = sim.params.churn_slack / 2.0
        good = int((~sim.pair.bad_mask).sum())
        assert dep.size <= int(cap * good) + 1

    def test_targets_good_members(self, sim):
        churn = TargetedChurn()
        dep = churn.epoch_departures(sim.pair, sim.params, np.random.default_rng(0))
        if dep.size:
            assert not sim.pair.bad_mask[dep].any()

    def test_no_duplicate_departures(self, sim):
        churn = TargetedChurn()
        dep = churn.epoch_departures(sim.pair, sim.params, np.random.default_rng(0))
        assert np.unique(dep).size == dep.size

    def test_within_cap_guarantee_holds(self, sim):
        """Adversarially-scheduled departures inside eps'/2 must NOT break
        good majorities (the paper's churn model guarantee)."""
        churn = TargetedChurn()
        churn.apply(sim.pair, sim.params, np.random.default_rng(0))
        assert sim.pair.fraction_red() < 0.25


class TestEventStream:
    def test_pairs_and_kinds(self):
        bad = np.zeros(64, dtype=bool)
        bad[:8] = True
        es = EventStream(64, bad, adversary_drive=1.0, seed=0)
        events = list(es.events(20))
        assert len(events) == 20
        for dep, join in events:
            assert dep.kind is EventKind.DEPART
            assert join.kind is EventKind.JOIN
            assert dep.id_index == join.id_index

    def test_full_drive_cycles_bad_ids(self):
        bad = np.zeros(64, dtype=bool)
        bad[:8] = True
        es = EventStream(64, bad, adversary_drive=1.0, seed=0)
        assert all(d.is_bad for d, _ in es.events(20))

    def test_zero_drive_cycles_good_ids(self):
        bad = np.zeros(64, dtype=bool)
        bad[:8] = True
        es = EventStream(64, bad, adversary_drive=0.0, seed=0)
        assert not any(d.is_bad for d, _ in es.events(20))
