"""Unit tests: churn models (repro.churn)."""

import warnings

import numpy as np
import pytest

from repro.churn import EventKind, EventStream, TargetedChurn, UniformChurn
from repro.churn.models import apply_departures
from repro.core.dynamic import EpochSimulator
from repro.core.membership import EpochPair
from repro.core.params import SystemParams
from repro.idspace.ring import Ring
from repro.inputgraph import make_input_graph
from repro.telemetry import TelemetryBuffer, reset_default_writer, set_default_writer


@pytest.fixture
def sim():
    return EpochSimulator(SystemParams(n=128, beta=0.05, seed=2), probes=300)


class TestUniformChurn:
    def test_rate_respected(self, sim):
        churn = UniformChurn(rate=0.1)
        n_dep = churn.apply(sim.pair, sim.params, np.random.default_rng(0))
        good = int((~sim.pair.bad_mask).sum())
        assert 0 < n_dep < 0.3 * good

    def test_rate_clipped_to_model_cap(self, sim):
        churn = UniformChurn(rate=0.9)  # way above eps'/2
        cap = sim.params.churn_slack / 2.0
        dep = churn.epoch_departures(sim.pair, sim.params, np.random.default_rng(0))
        good = int((~sim.pair.bad_mask).sum())
        assert dep.size < (cap + 0.1) * good

    def test_violation_mode_exceeds_cap(self, sim):
        churn = UniformChurn(rate=0.9, allow_violation=True)
        dep = churn.epoch_departures(sim.pair, sim.params, np.random.default_rng(0))
        good = int((~sim.pair.bad_mask).sum())
        assert dep.size > 0.5 * good

    def test_only_good_ids_depart(self, sim):
        churn = UniformChurn(rate=0.2)
        dep = churn.epoch_departures(sim.pair, sim.params, np.random.default_rng(0))
        assert not sim.pair.bad_mask[dep].any()

    def test_departures_flagged_and_reclassified(self, sim):
        churn = UniformChurn(rate=0.1)
        churn.apply(sim.pair, sim.params, np.random.default_rng(0))
        assert sim.pair.ring_departed.any()

    def test_heavy_violation_turns_groups_red(self, sim):
        """Failure injection: churn beyond eps'/2 breaks the guarantee."""
        churn = UniformChurn(rate=0.95, allow_violation=True)
        churn.apply(sim.pair, sim.params, np.random.default_rng(0))
        assert sim.pair.fraction_red() > 0.5

    def test_clip_warns_once_and_emits_event(self, sim):
        """Clipping an over-cap rate is no longer silent: one RuntimeWarning
        and one churn.clipped telemetry event per model instance."""
        churn = UniformChurn(rate=0.9)
        cap = sim.params.churn_slack / 2.0
        buffer = TelemetryBuffer()
        set_default_writer(buffer)
        try:
            with pytest.warns(RuntimeWarning, match="exceeds the model cap"):
                churn.epoch_departures(
                    sim.pair, sim.params, np.random.default_rng(0)
                )
            # second application: clip still engages, signal already given
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                churn.epoch_departures(
                    sim.pair, sim.params, np.random.default_rng(1)
                )
        finally:
            reset_default_writer()
        clipped = buffer.of_type("churn.clipped")
        assert len(clipped) == 1
        assert clipped[0]["model"] == "uniform"
        assert clipped[0]["rate"] == pytest.approx(0.9)
        assert clipped[0]["cap"] == pytest.approx(cap)

    def test_no_clip_signal_within_cap_or_in_violation_mode(self, sim):
        buffer = TelemetryBuffer()
        set_default_writer(buffer)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                UniformChurn(rate=0.01).epoch_departures(
                    sim.pair, sim.params, np.random.default_rng(0)
                )
                UniformChurn(rate=0.9, allow_violation=True).epoch_departures(
                    sim.pair, sim.params, np.random.default_rng(0)
                )
        finally:
            reset_default_writer()
        assert not buffer.of_type("churn.clipped")


class TestTargetedChurn:
    def test_budget_respected(self, sim):
        churn = TargetedChurn()
        dep = churn.epoch_departures(sim.pair, sim.params, np.random.default_rng(0))
        cap = sim.params.churn_slack / 2.0
        good = int((~sim.pair.bad_mask).sum())
        assert dep.size <= int(cap * good) + 1

    def test_targets_good_members(self, sim):
        churn = TargetedChurn()
        dep = churn.epoch_departures(sim.pair, sim.params, np.random.default_rng(0))
        if dep.size:
            assert not sim.pair.bad_mask[dep].any()

    def test_no_duplicate_departures(self, sim):
        churn = TargetedChurn()
        dep = churn.epoch_departures(sim.pair, sim.params, np.random.default_rng(0))
        assert np.unique(dep).size == dep.size

    def test_within_cap_guarantee_holds(self, sim):
        """Adversarially-scheduled departures inside eps'/2 must NOT break
        good majorities (the paper's churn model guarantee)."""
        churn = TargetedChurn()
        churn.apply(sim.pair, sim.params, np.random.default_rng(0))
        assert sim.pair.fraction_red() < 0.25

    def test_budget_tracks_present_good_over_ten_epochs(self, sim):
        """Regression: the per-epoch budget must be eps'/2 of the *present*
        good population.  The old code budgeted from all good IDs — already
        -departed ones included — so once natural (uniform) departures had
        thinned the pool, the adversarial schedule overshot the cap
        relative to the population it actually faced.  Ten epochs of
        uniform thinning followed by the targeted schedule, each targeted
        batch checked against the present population it saw."""
        targeted = TargetedChurn()
        natural = UniformChurn(rate=0.08)
        cap = sim.params.churn_slack / 2.0
        rng = np.random.default_rng(0)
        for _ in range(10):
            natural.apply(sim.pair, sim.params, rng)
            present = int((~sim.pair.bad_mask & ~sim.pair.ring_departed).sum())
            dep = targeted.epoch_departures(sim.pair, sim.params, rng)
            assert dep.size <= int(cap * present)
            # never re-depart an ID that already left
            assert not sim.pair.ring_departed[dep].any()
            if dep.size:
                apply_departures(sim.pair, dep, sim.params)

    def test_sideless_fallback_budget_counts_present_good(self, sim):
        """Regression for the side-less uniform fallback: with half the good
        IDs already departed, the budget must shrink with them."""
        pair = sim.pair
        bare = EpochPair(
            ring=pair.ring,
            H=pair.H,
            bad_mask=pair.bad_mask,
            red1=pair.red1.copy(),
            red2=pair.red2.copy(),
            side1=None,
            side2=None,
        )
        good = np.flatnonzero(~bare.bad_mask)
        bare.ring_departed[good[: good.size // 2]] = True
        present = int((~bare.bad_mask & ~bare.ring_departed).sum())
        cap = sim.params.churn_slack / 2.0
        dep = TargetedChurn().epoch_departures(
            bare, sim.params, np.random.default_rng(0)
        )
        assert dep.size <= int(cap * present)
        assert not bare.ring_departed[dep].any()
        assert not bare.bad_mask[dep].any()


class TestEventStream:
    def test_pairs_and_kinds(self):
        bad = np.zeros(64, dtype=bool)
        bad[:8] = True
        es = EventStream(64, bad, adversary_drive=1.0, seed=0)
        events = list(es.events(20))
        assert len(events) == 20
        for dep, join in events:
            assert dep.kind is EventKind.DEPART
            assert join.kind is EventKind.JOIN
            assert dep.id_index == join.id_index

    def test_full_drive_cycles_bad_ids(self):
        bad = np.zeros(64, dtype=bool)
        bad[:8] = True
        es = EventStream(64, bad, adversary_drive=1.0, seed=0)
        assert all(d.is_bad for d, _ in es.events(20))

    def test_zero_drive_cycles_good_ids(self):
        bad = np.zeros(64, dtype=bool)
        bad[:8] = True
        es = EventStream(64, bad, adversary_drive=0.0, seed=0)
        assert not any(d.is_bad for d, _ in es.events(20))
