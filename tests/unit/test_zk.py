"""Unit tests: simulated ZK verification (repro.pow.zk)."""

import numpy as np
import pytest

from repro.idspace.hashing import OracleSuite
from repro.pow.puzzles import PuzzleScheme, Solution
from repro.pow.zk import ZKProver, ZKVerifier, run_zk_verification


@pytest.fixture
def scheme():
    return PuzzleScheme(OracleSuite(seed=3), epoch_length=100)


@pytest.fixture
def solution(scheme):
    rng = np.random.default_rng(0)
    sols = scheme.mint_oracle(r_string=0xAA, trials=3000, rng=rng, max_solutions=1)
    assert sols
    return sols[0]


class TestCompleteness:
    def test_honest_prover_accepted(self, scheme, solution):
        t = run_zk_verification(scheme, solution, r_string=0xAA)
        assert t.accepted

    def test_many_sessions_all_accept(self, scheme, solution):
        for seed in range(5):
            t = run_zk_verification(
                scheme, solution, 0xAA, prover_seed=seed, verifier_seed=seed + 50
            )
            assert t.accepted


class TestSoundness:
    def test_forged_solution_rejected(self, scheme, solution):
        fake = Solution(
            id_value=solution.id_value,  # claims the same ID
            nonce=solution.nonce ^ 0xDEAD,  # without knowing the real nonce
            r_string=solution.r_string,
            epoch=solution.epoch,
        )
        t = run_zk_verification(scheme, fake, 0xAA, rounds=16)
        assert not t.accepted

    def test_expired_string_rejected(self, scheme, solution):
        t = run_zk_verification(scheme, solution, r_string=0xBB)
        assert not t.accepted

    def test_soundness_error_drops_with_rounds(self, scheme, solution):
        """With challenge bit 1 forced-failing for cheaters, acceptance
        requires all-zero challenges: probability 2^-rounds."""
        fake = Solution(solution.id_value, 12345, solution.r_string, 0)
        accepted = sum(
            run_zk_verification(
                scheme, fake, 0xAA, rounds=8, verifier_seed=s
            ).accepted
            for s in range(30)
        )
        assert accepted <= 1  # 30 * 2^-8 ~ 0.12 expected


class TestZeroKnowledge:
    def test_transcript_never_contains_nonce(self, scheme, solution):
        t = run_zk_verification(scheme, solution, 0xAA)
        leaked = set(t.commitments) | set(t.responses) | set(t.challenges)
        assert solution.nonce not in leaked

    def test_transcripts_fresh_per_session(self, scheme, solution):
        t1 = run_zk_verification(scheme, solution, 0xAA, prover_seed=1)
        t2 = run_zk_verification(scheme, solution, 0xAA, prover_seed=2)
        assert t1.commitments != t2.commitments  # fresh blinders each time

    def test_replay_cannot_reprove(self, scheme, solution):
        """A thief holding a full transcript (but not sigma) cannot answer
        fresh challenges: re-running verification with a forged solution
        built from transcript data fails."""
        t = run_zk_verification(scheme, solution, 0xAA)
        stolen_nonce = t.commitments[0]  # best the thief has: a commitment
        thief = Solution(t.claimed_id, stolen_nonce, 0xAA, 0)
        t2 = run_zk_verification(scheme, thief, 0xAA, verifier_seed=777)
        assert not t2.accepted


class TestProtocolShape:
    def test_rounds_respected(self, scheme, solution):
        prover = ZKProver(solution, scheme)
        verifier = ZKVerifier(scheme, rounds=9)
        t = verifier.verify(prover, 0xAA)
        assert len(t.commitments) == 9
        assert len(t.challenges) == 9
        assert len(t.responses) == 9

    def test_challenges_binary(self, scheme, solution):
        t = run_zk_verification(scheme, solution, 0xAA)
        assert set(t.challenges) <= {0, 1}
