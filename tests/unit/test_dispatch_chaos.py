"""Unit tests: the Byzantine-worker fault-injection harness.

Each fault kind is exercised in isolation against the toy sweep so a
failure names the broken behaviour, then in combination; the invariant
everywhere is the tentpole contract — whatever the fault schedule and
interleaving, the reassembled table is byte-identical to the serial
oracle.  Real-experiment schedules live in
tests/property/test_dispatch_equivalence.py.
"""

import pytest

from repro.sim.dispatch import (
    CliChaos,
    DispatchError,
    MemoryBroker,
    VirtualClock,
    WorkerFault,
    equivocate_result,
    run_chaos,
    units_for_request,
)
from repro.sim.dispatch.chaos import FaultyWorker, corrupt_result, staleify_result
from repro.sim.dispatch.wire import execute_unit, payload_hash
from repro.sim.sweep import run_sweep

from test_dispatch import TOY, build_toy_spec


def _sweep(seed=0, xs=(1, 2, 3, 4)):
    spec, units = units_for_request("TOY", seed, True, {"xs": list(xs)}, registry=TOY)
    return spec, units, run_sweep(build_toy_spec(seed=seed, xs=xs))


class TestFaultPrimitives:
    def test_corrupt_result_breaks_the_hash(self):
        spec, units, _ = _sweep()
        result = execute_unit(units[0], spec=spec)
        bad = corrupt_result(result)
        assert bad.payload_sha256 == result.payload_sha256  # the lie
        assert payload_hash(bad.payload) != bad.payload_sha256  # the tell

    def test_stale_result_changes_only_the_fingerprint(self):
        spec, units, _ = _sweep()
        result = execute_unit(units[0], spec=spec)
        stale = staleify_result(result)
        assert stale.fingerprint != result.fingerprint
        assert payload_hash(stale.payload) == stale.payload_sha256

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            WorkerFault("bitflip")

    def test_equivocate_result_is_hash_consistent_but_wrong(self):
        spec, units, _ = _sweep()
        result = execute_unit(units[0], spec=spec)
        lie = equivocate_result(result, salt="s")
        assert lie.payload != result.payload
        assert lie.payload_sha256 != result.payload_sha256
        # the tell corrupt_result leaves is absent: the lie verifies clean
        assert payload_hash(lie.payload) == lie.payload_sha256
        assert lie.fingerprint == result.fingerprint

    def test_equivocation_salt_coordinates_the_lie(self):
        spec, units, _ = _sweep()
        result = execute_unit(units[0], spec=spec)
        a = equivocate_result(result, salt="cartel")
        b = equivocate_result(result, salt="cartel")
        c = equivocate_result(result, salt="other")
        # same salt = same wrong hash (the quorum-splitting pair);
        # distinct salts disagree with each other too
        assert a.payload_sha256 == b.payload_sha256
        assert c.payload_sha256 != a.payload_sha256

    def test_clock_only_moves_forward(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)


@pytest.mark.parametrize(
    "fault",
    [
        WorkerFault("kill"),
        WorkerFault("duplicate", budget=4),
        WorkerFault("corrupt", budget=2),
        WorkerFault("stale", budget=2),
        WorkerFault("stall", budget=2, stall_for=25.0),
    ],
    ids=lambda f: f.kind,
)
class TestSingleFaultKinds:
    def test_table_survives_fault_with_honest_colleague(self, fault):
        spec, units, oracle = _sweep()
        for seed in (0, 1):
            table = run_chaos(
                spec, units, [fault, WorkerFault("honest")],
                seed=seed, lease_timeout=10.0,
            )
            assert table.to_json() == oracle.to_json()


class TestSchedules:
    def test_full_gallery_memory(self):
        spec, units, oracle = _sweep()
        faults = [
            WorkerFault("kill"),
            WorkerFault("corrupt", budget=2),
            WorkerFault("duplicate", budget=3),
            WorkerFault("stale", budget=2),
            WorkerFault("stall", budget=1, stall_for=30.0),
            WorkerFault("honest"),
        ]
        for seed in range(4):
            table = run_chaos(spec, units, faults, seed=seed, lease_timeout=10.0)
            assert table.to_json() == oracle.to_json()

    def test_full_gallery_spool(self, tmp_path):
        spec, units, oracle = _sweep()
        faults = [
            WorkerFault("kill"),
            WorkerFault("corrupt", budget=1),
            WorkerFault("stall", budget=1, stall_for=30.0),
            WorkerFault("honest"),
        ]
        table = run_chaos(
            spec, units, faults, seed=3, lease_timeout=10.0,
            transport="spool", spool_dir=tmp_path / "spool",
        )
        assert table.to_json() == oracle.to_json()

    def test_all_workers_dead_is_a_loud_livelock(self):
        spec, units, _ = _sweep()
        with pytest.raises(DispatchError, match="did not complete"):
            run_chaos(
                spec, units,
                [WorkerFault("kill"), WorkerFault("kill")],
                seed=0, lease_timeout=5.0, max_steps=300,
            )

    def test_same_seed_same_schedule(self):
        # the harness itself must be reproducible, or a red run cannot be
        # replayed; attempt counts are a schedule-sensitive observable
        spec, units, _ = _sweep()
        counts = []
        for _ in range(2):
            clock = VirtualClock()
            broker = MemoryBroker(spec, units, lease_timeout=10.0, clock=clock.now)
            table = None
            import numpy as np

            rng = np.random.default_rng(7)
            from repro.sim.dispatch.chaos import FaultyWorker

            workers = [
                FaultyWorker("w0-kill", broker, spec, WorkerFault("kill"), clock),
                FaultyWorker("w1-honest", broker, spec, WorkerFault("honest"), clock),
            ]
            for _step in range(500):
                if broker.is_complete():
                    break
                workers[int(rng.integers(len(workers)))].step()
                clock.advance(float(rng.random()) ** 2 * 7.5)
            counts.append(tuple(broker.attempts(u.index) for u in units))
        assert counts[0] == counts[1]

    def test_unknown_transport_rejected(self):
        spec, units, _ = _sweep()
        with pytest.raises(ValueError, match="transport"):
            run_chaos(spec, units, [WorkerFault()], transport="carrier-pigeon")

    def test_spool_transport_requires_dir(self):
        spec, units, _ = _sweep()
        with pytest.raises(ValueError, match="spool_dir"):
            run_chaos(spec, units, [WorkerFault()], transport="spool")


class TestQuorumPersonas:
    """The three new personas against quorum mode: plausible wrong answers
    are outvoted by the honest majority as long as strictly fewer than
    ceil(r/2) equivocators vote per unit — on both transports."""

    def test_persistent_equivocator_outvoted_at_r3_memory(self):
        spec, units, oracle = _sweep()
        # budget 999 = never turns honest: convergence must come from the
        # two honest workers outvoting it, not from the fault expiring
        faults = [
            WorkerFault("equivocate", budget=999),
            WorkerFault("honest"),
            WorkerFault("honest"),
        ]
        for seed in (0, 1):
            table = run_chaos(
                spec, units, faults, seed=seed, lease_timeout=10.0, replicas=3
            )
            assert table.to_json() == oracle.to_json()

    def test_persistent_equivocator_outvoted_at_r3_spool(self, tmp_path):
        spec, units, oracle = _sweep()
        faults = [
            WorkerFault("equivocate", budget=999),
            WorkerFault("honest"),
            WorkerFault("honest"),
        ]
        table = run_chaos(
            spec, units, faults, seed=2, lease_timeout=10.0, replicas=3,
            transport="spool", spool_dir=tmp_path / "spool",
        )
        assert table.to_json() == oracle.to_json()

    def test_split_pair_outvoted_at_r5(self, tmp_path):
        # two coordinated liars share one wrong hash: 2 votes per unit at
        # worst, strictly under ceil(5/2) = 3 — the stated guarantee bound
        spec, units, oracle = _sweep()
        faults = [
            WorkerFault("split", budget=999, salt="cartel"),
            WorkerFault("split", budget=999, salt="cartel"),
            WorkerFault("honest"),
            WorkerFault("honest"),
            WorkerFault("honest"),
        ]
        for transport, spool_dir in (
            ("memory", None), ("spool", tmp_path / "spool"),
        ):
            table = run_chaos(
                spec, units, faults, seed=5, lease_timeout=10.0, replicas=5,
                transport=transport, spool_dir=spool_dir,
            )
            assert table.to_json() == oracle.to_json()

    def test_adaptive_persona_is_honest_until_it_has_observed(self):
        spec, units, _ = _sweep()
        broker = MemoryBroker(spec, units, lease_timeout=10.0, replicas=3)
        clock = VirtualClock()
        worker = FaultyWorker(
            "wA", broker, spec,
            WorkerFault("adaptive", budget=99, after=1), clock,
        )
        worker.step()  # first lease: under observation, completes honestly
        honest0 = execute_unit(units[0], spec=spec).payload_sha256
        assert broker.reassembler.vote_counts(0) == {honest0: 1}
        worker.step()  # observed enough: strikes from its second lease on
        honest1 = execute_unit(units[1], spec=spec).payload_sha256
        votes1 = broker.reassembler.vote_counts(1)
        assert len(votes1) == 1 and honest1 not in votes1

    def test_adaptive_schedule_converges_to_oracle(self, tmp_path):
        spec, units, oracle = _sweep()
        faults = [
            WorkerFault("adaptive", budget=999, after=2),
            WorkerFault("honest"),
            WorkerFault("honest"),
        ]
        table = run_chaos(
            spec, units, faults, seed=7, lease_timeout=10.0, replicas=3,
            transport="spool", spool_dir=tmp_path / "spool",
        )
        assert table.to_json() == oracle.to_json()


class TestCliChaos:
    def test_grammar(self):
        chaos = CliChaos("kill:2, corrupt:1")
        assert chaos.plan == {"kill": 2, "corrupt": 1}
        assert CliChaos("stale").plan == {"stale": 1}
        assert CliChaos("equivocate:3").plan == {"equivocate": 3}
        with pytest.raises(ValueError, match="unknown chaos"):
            CliChaos("meteor:1")

    def test_equivocate_is_persistent_from_unit_k_on(self):
        spec, units, _ = _sweep()
        result = execute_unit(units[0], spec=spec, worker="wE")

        class Sink:
            def __init__(self):
                self.submitted = []

            def complete(self, r):
                self.submitted.append(r)

        sink = Sink()
        chaos = CliChaos("equivocate:2")
        assert chaos.apply(units[0], result, sink) is result  # still honest
        assert chaos.apply(units[1], result, sink) is None  # starts lying
        assert chaos.apply(units[2], result, sink) is None  # ...and never stops
        for lie in sink.submitted:
            assert payload_hash(lie.payload) == lie.payload_sha256
            assert lie.payload_sha256 != result.payload_sha256

    def test_corrupt_and_stale_consume_the_completion(self):
        spec, units, _ = _sweep()
        result = execute_unit(units[0], spec=spec)

        class Sink:
            submitted = []

            def complete(self, r):
                self.submitted.append(r)

        sink = Sink()
        chaos = CliChaos("corrupt:1,stale:2")
        assert chaos.apply(units[0], result, sink) is None  # corrupt ate it
        assert payload_hash(sink.submitted[0].payload) != sink.submitted[0].payload_sha256
        assert chaos.apply(units[1], result, sink) is None  # stale ate it
        assert sink.submitted[1].fingerprint != result.fingerprint
        # budget spent: the third unit flows through untouched
        assert chaos.apply(units[2], result, sink) is result


class TestChaosTelemetryTrail:
    """Regression: a chaos run over the spool transport must leave a
    complete, strictly-parseable jsonl event trail — whatever the fault
    schedule did to workers, the observability record survives it."""

    def test_chaos_run_leaves_complete_event_trail(self, tmp_path):
        from repro.telemetry import read_events

        spec, units, oracle = _sweep()
        table = run_chaos(
            spec, units,
            [
                WorkerFault("kill"),
                WorkerFault("corrupt", budget=2),
                WorkerFault("stale", budget=2),
                WorkerFault("honest"),
            ],
            seed=3, lease_timeout=10.0,
            transport="spool", spool_dir=tmp_path / "spool",
        )
        assert table.to_json() == oracle.to_json()
        # strict=True: every line parses; no torn or free-text writes
        events = read_events(tmp_path / "spool" / "events.log", strict=True)
        accepted = {
            e["index"] for e in events
            if e["type"] == "dispatch.complete" and e["verdict"] == "accepted"
        }
        assert accepted == {u.index for u in units}
        # the Byzantine completions are in the trail too, typed
        rejected = [e for e in events if e["type"] == "dispatch.reject"]
        for event in rejected:
            assert event["verdict"] in ("corrupt", "stale")
        # monotonic per writer: one spool broker wrote this trail
        stamps = [e["ts"] for e in events]
        assert stamps == sorted(stamps)

    def test_chaos_trail_replays_through_report(self, tmp_path):
        from repro.analysis.telemetry_report import summarize_events
        from repro.telemetry import read_events

        spec, units, oracle = _sweep(xs=(1, 2))
        run_chaos(
            spec, units, [WorkerFault("corrupt", budget=1), WorkerFault("honest")],
            seed=1, lease_timeout=10.0,
            transport="spool", spool_dir=tmp_path / "spool",
        )
        events = read_events(tmp_path / "spool" / "events.log", strict=True)
        summary = summarize_events(events)
        dispatch = summary["dispatch"]
        assert dispatch["served_units"] == len(units)
        # at-least-once delivery: a unit may be verified-complete more than
        # once (idempotent first-write-wins), never fewer times than once
        assert dispatch["verdicts"].get("accepted", 0) >= len(units)
        accepted = {
            e["index"] for e in events
            if e["type"] == "dispatch.complete" and e["verdict"] == "accepted"
        }
        assert accepted == {u.index for u in units}
        assert dispatch["lease_latency_s"]["count"] >= len(units)
