"""Unit tests: epoch simulator (repro.core.dynamic)."""

import numpy as np
import pytest

from repro.churn import UniformChurn
from repro.core.dynamic import EpochSimulator
from repro.core.params import SystemParams


@pytest.fixture
def params():
    return SystemParams(n=128, beta=0.05, seed=1)


class TestInit:
    def test_initial_pair_populated(self, params):
        sim = EpochSimulator(params, probes=500)
        assert sim.pair.n >= 120
        assert sim.pair.side1 is not None
        assert sim.pair.side2 is not None
        assert sim.epoch == 0

    def test_initial_no_confusion(self, params):
        sim = EpochSimulator(params, probes=500)
        assert not sim.pair.side1.confused.any()

    def test_reproducible(self, params):
        a = EpochSimulator(params, probes=500)
        b = EpochSimulator(params, probes=500)
        assert np.array_equal(a.pair.ring.ids, b.pair.ring.ids)
        assert np.array_equal(a.pair.red1, b.pair.red1)


class TestStep:
    def test_step_advances_epoch(self, params):
        sim = EpochSimulator(params, probes=500)
        rep = sim.step()
        assert rep.epoch == 1 and sim.epoch == 1
        assert len(sim.history) == 1

    def test_population_replaced(self, params):
        sim = EpochSimulator(params, probes=500)
        old_ids = sim.pair.ring.ids.copy()
        sim.step()
        assert not np.array_equal(old_ids, sim.pair.ring.ids)

    def test_two_graphs_builds_both(self, params):
        sim = EpochSimulator(params, probes=500)
        rep = sim.step()
        assert rep.build_2 is not None
        assert rep.build_1.which == 1 and rep.build_2.which == 2

    def test_single_graph_mode(self, params):
        sim = EpochSimulator(params, two_graphs=False, probes=500)
        rep = sim.step()
        assert rep.build_2 is None
        assert np.array_equal(sim.pair.red1, sim.pair.red2)

    def test_run_collects_history(self, params):
        sim = EpochSimulator(params, probes=500)
        reports = sim.run(3)
        assert [r.epoch for r in reports] == [1, 2, 3]

    def test_churn_applied(self, params):
        sim = EpochSimulator(params, churn=UniformChurn(rate=0.1), probes=500)
        rep = sim.step()
        assert rep.departures > 0

    def test_ledger_accumulates(self, params):
        sim = EpochSimulator(params, probes=500)
        sim.step()
        m1 = sim.ledger.total_messages()
        sim.step()
        assert sim.ledger.total_messages() > m1

    def test_per_epoch_messages_not_cumulative(self, params):
        sim = EpochSimulator(params, probes=500)
        r1 = sim.step()
        r2 = sim.step()
        # each report carries only its own epoch's build messages
        assert abs(r2.routing_messages - r1.routing_messages) < r1.routing_messages

    def test_stable_at_low_beta(self, params):
        sim = EpochSimulator(params, probes=500)
        reports = sim.run(3)
        assert all(r.fraction_red < 0.2 for r in reports)

    def test_report_aggregates(self, params):
        sim = EpochSimulator(params, probes=500)
        rep = sim.step()
        assert rep.fraction_red == pytest.approx(
            0.5 * (rep.fraction_red_1 + rep.fraction_red_2)
        )
        assert rep.qf == pytest.approx(0.5 * (rep.qf_1 + rep.qf_2))


class TestKernelSelection:
    def test_unknown_kernel_rejected(self, params):
        import pytest as _pytest

        with _pytest.raises(ValueError, match="kernel"):
            EpochSimulator(params, kernel="bogus")

    def test_default_kernel_is_vectorized(self, params):
        assert EpochSimulator(params, probes=100).kernel == "vectorized"

    def test_serial_kernel_step_matches_vectorized(self, params):
        import numpy as np

        reports = {}
        for kernel in ("serial", "vectorized"):
            sim = EpochSimulator(
                params, probes=200, rng=np.random.default_rng(2), kernel=kernel
            )
            reports[kernel] = sim.step()
        a, b = reports["serial"], reports["vectorized"]
        assert a.fraction_red == b.fraction_red
        assert a.qf == b.qf
        assert a.routing_messages == b.routing_messages
        assert a.mean_membership == b.mean_membership
