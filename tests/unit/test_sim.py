"""Unit tests: simulation substrate (repro.sim)."""

import subprocess
import sys

import numpy as np
import pytest

from repro.sim import child, make_rng, spawn, stream_for, tag_entropy
from repro.sim.engine import SyncEngine
from repro.sim.metrics import MetricsRecorder
from repro.sim.montecarlo import run_trials, wilson_interval


class TestRng:
    def test_make_rng_deterministic(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_spawn_independent(self):
        rng = make_rng(0)
        a, b = spawn(rng, 2)
        assert a.random() != b.random()

    def test_spawn_reproducible(self):
        xs = [c.random() for c in spawn(make_rng(1), 3)]
        ys = [c.random() for c in spawn(make_rng(1), 3)]
        assert xs == ys

    def test_child(self):
        assert child(make_rng(0)).random() == child(make_rng(0)).random()

    def test_stream_for_tags(self):
        assert stream_for(0, "a").random() == stream_for(0, "a").random()
        assert stream_for(0, "a").random() != stream_for(0, "b").random()

    def test_stream_for_pinned_draws(self):
        """Regression: tag digests must be stable across processes and
        versions.  The old ``abs(hash(t))`` digest was salted by
        ``PYTHONHASHSEED``, so the same (seed, tag) named different
        streams in different processes; these draws pin the CRC-32-based
        stream forever."""
        assert tag_entropy("epoch") == 392650914
        draws = stream_for(123, "epoch").random(3)
        assert draws == pytest.approx(
            [0.5296747315353953, 0.7141755751655828, 0.3646584897641174],
            abs=0.0,
        )
        draws2 = stream_for(7, "churn", 2).random(2)
        assert draws2 == pytest.approx(
            [0.7604700989999414, 0.3159676731700014], abs=0.0
        )

    def test_stream_for_stable_across_hash_seeds(self):
        """The same (seed, tag) stream in a child process with a different
        hash salt — the exact failure mode of the hash() digest."""
        import os
        import pathlib

        import repro

        src = str(pathlib.Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ, PYTHONHASHSEED="12345", PYTHONPATH=src)
        code = (
            "from repro.sim import stream_for;"
            "print(repr(stream_for(123, 'epoch').random()))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True, env=env,
        ).stdout.strip()
        assert float(out) == stream_for(123, "epoch").random()

    def test_tag_entropy_distinguishes_types(self):
        assert tag_entropy(3) != tag_entropy("3")


class TestEngine:
    def test_flood(self):
        """Messages seeded at node 0 flood a 4-node line in 3 rounds."""
        eng = SyncEngine(4)
        eng.seed(0, "tok")
        seen = set()

        def handler(node, rnd, inbox):
            out = []
            for msg in inbox:
                if node not in seen:
                    seen.add(node)
                    if node + 1 < 4:
                        out.append((node + 1, msg))
            return out

        eng.run(4, handler)
        assert seen == {0, 1, 2, 3}
        assert eng.total_messages() == 3

    def test_round_stats(self):
        eng = SyncEngine(2)
        eng.seed(0, "x")
        eng.run(2, lambda n, r, inbox: [(1, m) for m in inbox])
        assert len(eng.stats) == 2
        assert eng.stats[0].messages == 1

    def test_repeated_run_round_indexes_monotone(self):
        """Regression: a second run() must continue, not restart, indexing."""
        eng = SyncEngine(2)
        eng.seed(0, "x")
        handler = lambda n, r, inbox: [((n + 1) % 2, m) for m in inbox]
        eng.run(3, handler)
        eng.run(2, handler)
        indexes = [s.round_index for s in eng.stats]
        assert indexes == [0, 1, 2, 3, 4]
        assert len(set(indexes)) == len(indexes)

    def test_active_counts_receivers(self):
        """A node that receives but stays silent is still active."""
        eng = SyncEngine(2)
        eng.seed(0, "x")
        # node 0 forwards to node 1; node 1 swallows everything
        eng.run(2, lambda n, r, inbox: [(1, m) for m in inbox] if n == 0 else [])
        # round 0: node 0 receives+sends -> active; round 1: node 1 receives
        assert eng.stats[0].active_nodes == 1
        assert eng.stats[1].active_nodes == 1

    def test_active_counts_inbox_consuming_handler(self):
        """Receipt is judged before the handler runs, so a handler that
        drains its inbox in place is still counted active."""
        eng = SyncEngine(2)
        eng.seed(0, "x")

        def handler(node, rnd, inbox):
            while inbox:
                inbox.pop()
            return []

        eng.run(1, handler)
        assert eng.stats[0].active_nodes == 1

    def test_run_returns_per_call_slice(self):
        """run() returns only this call's rounds; history stays on stats."""
        eng = SyncEngine(2)
        eng.seed(0, "x")
        handler = lambda n, r, inbox: [((n + 1) % 2, m) for m in inbox]
        first = eng.run(3, handler)
        second = eng.run(2, handler)
        assert [s.round_index for s in first] == [0, 1, 2]
        assert [s.round_index for s in second] == [3, 4]
        assert len(eng.stats) == 5


class TestMonteCarlo:
    def test_run_trials_mean(self):
        res = run_trials(lambda rng: rng.random(), 200, make_rng(0))
        assert res.mean == pytest.approx(0.5, abs=0.06)
        assert res.lo <= res.mean <= res.hi

    def test_run_trials_reproducible(self):
        a = run_trials(lambda rng: rng.random(), 20, make_rng(3))
        b = run_trials(lambda rng: rng.random(), 20, make_rng(3))
        assert a.mean == b.mean

    def test_wilson_bounds(self):
        lo, hi = wilson_interval(5, 10)
        assert 0.0 <= lo < 0.5 < hi <= 1.0

    def test_wilson_degenerate(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_wilson_zero_successes(self):
        lo, hi = wilson_interval(0, 500)
        assert lo == 0.0 and hi < 0.02

    def test_binary_trial_ci_within_unit_interval(self):
        """Regression: rare-event 0/1 trials must not produce lo<0 / hi>1
        (the normal approximation did); binary trials get Wilson bounds."""
        res = run_trials(lambda rng: float(rng.random() < 0.01), 100, make_rng(0))
        assert 0.0 <= res.lo <= res.mean <= res.hi <= 1.0
        # all-failures corner: degenerate normal CI would be [0, 0]
        res0 = run_trials(lambda rng: 0.0, 50, make_rng(1))
        assert res0.lo == 0.0 and 0.0 < res0.hi <= 1.0

    def test_unit_interval_trial_ci_clamped(self):
        """Non-binary trials with values in [0,1] get a clamped CI."""
        res = run_trials(lambda rng: rng.random() ** 8, 40, make_rng(2))
        assert res.lo >= 0.0 and res.hi <= 1.0

    def test_unbounded_trial_ci_not_clamped(self):
        """Count-valued trials keep the plain normal CI (no fake clamp)."""
        res = run_trials(lambda rng: float(rng.poisson(600)), 30, make_rng(3))
        assert res.lo > 1.0  # nowhere near the unit interval


class TestMetrics:
    def test_record_and_get(self):
        m = MetricsRecorder()
        m.record("x", 1.0)
        m.record("x", 2.0)
        assert list(m.get("x")) == [1.0, 2.0]

    def test_record_many(self):
        m = MetricsRecorder()
        m.record_many(a=1.0, b=2.0)
        assert m.last("a") == 1.0 and m.last("b") == 2.0

    def test_last_missing_raises(self):
        with pytest.raises(KeyError):
            MetricsRecorder().last("nope")

    def test_summary(self):
        m = MetricsRecorder()
        for v in (1.0, 3.0):
            m.record("x", v)
        s = m.summary("x")
        assert s["mean"] == 2.0 and s["count"] == 2

    def test_summary_empty(self):
        assert MetricsRecorder().summary("none") == {"count": 0}
