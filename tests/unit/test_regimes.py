"""Unit tests: epoch-map regime analysis (repro.analysis.regimes)."""

import numpy as np
import pytest

from repro.analysis.regimes import (
    epoch_map_analysis,
    iterate_epoch_map,
    minimum_d2_for_stability,
)
from repro.core.params import SystemParams


class TestEpochMapAnalysis:
    def test_small_beta_big_groups_stable(self):
        p = SystemParams(n=2**20, beta=0.05, d2=14.0, d1=3.0)
        rep = epoch_map_analysis(p)
        assert rep.stable
        assert rep.fixed_point is not None
        assert rep.fixed_point < 10 * rep.p_comp
        assert rep.contraction_slope < 1.0

    def test_tiny_groups_high_beta_unstable(self):
        p = SystemParams(n=2**20, beta=0.15, d1=1.0, d2=4.0)
        rep = epoch_map_analysis(p)
        assert not rep.stable
        assert rep.margin < 0

    def test_margin_sign_matches_stability(self):
        for beta, d2 in ((0.05, 12.0), (0.12, 4.0), (0.08, 8.0)):
            p = SystemParams(n=2**16, beta=beta, d1=d2 / 4, d2=d2)
            rep = epoch_map_analysis(p)
            assert rep.stable == (rep.margin > 0 and rep.contraction_slope < 1)

    def test_fixed_point_is_fixed(self):
        p = SystemParams(n=2**20, beta=0.05, d2=14.0, d1=3.0)
        rep = epoch_map_analysis(p)
        f = rep.p_comp + rep.K * rep.fixed_point**2
        assert f == pytest.approx(rep.fixed_point, rel=1e-9)


class TestMinimumD2:
    def test_monotone_in_beta(self):
        lo = minimum_d2_for_stability(SystemParams(n=2**16, beta=0.05))
        hi = minimum_d2_for_stability(SystemParams(n=2**16, beta=0.12))
        assert hi > lo

    def test_threshold_is_tight(self):
        params = SystemParams(n=2**16, beta=0.08)
        m = minimum_d2_for_stability(params)
        assert epoch_map_analysis(params, m=m).stable
        assert not epoch_map_analysis(params, m=m - 1).stable

    def test_stays_loglog_scale(self):
        """The stability requirement grows like log log n, not log n —
        the whole point of the paper."""
        m_small = minimum_d2_for_stability(SystemParams(n=2**10, beta=0.05))
        m_large = minimum_d2_for_stability(SystemParams(n=2**30, beta=0.05))
        assert m_large <= 3 * m_small


class TestIteration:
    def test_dual_converges_in_stable_regime(self):
        p = SystemParams(n=2**20, beta=0.05, d2=14.0, d1=3.0)
        traj = iterate_epoch_map(p, epochs=12, dual=True)
        rep = epoch_map_analysis(p)
        assert traj[-1] == pytest.approx(rep.fixed_point, rel=0.01)

    def test_single_escapes(self):
        p = SystemParams(n=2**20, beta=0.05, d2=14.0, d1=3.0)
        traj = iterate_epoch_map(p, epochs=12, dual=False)
        assert traj[-1] == 1.0

    def test_trajectory_monotone_from_below(self):
        p = SystemParams(n=2**20, beta=0.05, d2=14.0, d1=3.0)
        traj = iterate_epoch_map(p, epochs=8, dual=True, p0=1e-9)
        assert all(a <= b + 1e-15 for a, b in zip(traj, traj[1:]))

    def test_custom_start(self):
        p = SystemParams(n=2**20, beta=0.05, d2=14.0, d1=3.0)
        traj = iterate_epoch_map(p, epochs=1, dual=True, p0=0.5)
        assert traj[0] == 0.5
