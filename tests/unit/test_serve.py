"""Unit tests: the asyncio serving layer (``repro.serve``).

The acceptance bar from ISSUE 10: queries against a live, churning
simulator are answered from consistent copy-on-publish snapshots, and
every response is **byte-identical** to an offline oracle that replays
the same config.  These tests pin that plus the protocol edges (status,
stop, malformed requests) and both load-generator disciplines.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.serve import (
    EpochSnapshot,
    LoadReport,
    RoutingService,
    ServeConfig,
    build_snapshot,
    canonical_response,
    make_simulator,
    replay_snapshots,
    run_load,
    send_stop,
    verify_responses,
)
from repro.telemetry import TelemetryBuffer

CONFIG = ServeConfig(
    n=128, epochs=2, churn_rate=0.05, probes=200, epoch_period_s=0.05
)


def _queries(count: int, n: int, seed: int = 7) -> list[tuple[int, float]]:
    rng = np.random.default_rng(seed)
    return [
        (int(rng.integers(0, n)), float(rng.random())) for _ in range(count)
    ]


class TestSnapshot:
    def test_answer_is_deterministic_and_canonical(self):
        snap = build_snapshot(make_simulator(CONFIG).pair, CONFIG.params, 0)
        for source, target in _queries(20, CONFIG.n):
            a = snap.answer(source, target)
            b = snap.answer(source, target)
            assert canonical_response(a) == canonical_response(b)
            assert a["epoch"] == 0 and a["source"] == source
            assert isinstance(a["path"], list)
            assert snap.outcome_of(a) in ("delivered", "corrupted", "unresolved")

    def test_answer_validates_domain(self):
        snap = build_snapshot(make_simulator(CONFIG).pair, CONFIG.params, 0)
        for source, target in [
            (-1, 0.5), (CONFIG.n, 0.5), ("3", 0.5), (True, 0.5), (None, 0.5),
            (0, -0.1), (0, 1.0), (0, "x"), (0, None), (0, False),
        ]:
            with pytest.raises(ValueError):
                snap.answer(source, target)

    def test_copy_on_publish_survives_simulator_mutation(self):
        # the published snapshot must answer identically no matter how far
        # the live simulator has churned past it
        sim = make_simulator(CONFIG)
        snap = build_snapshot(sim.pair, CONFIG.params, 0)
        queries = _queries(30, CONFIG.n)
        before = [canonical_response(snap.answer(s, t)) for s, t in queries]
        for _ in range(3):
            sim.step()
        after = [canonical_response(snap.answer(s, t)) for s, t in queries]
        assert before == after


class TestOracle:
    def test_replay_matches_a_second_replay(self):
        snaps_a = replay_snapshots(CONFIG, 2)
        snaps_b = replay_snapshots(CONFIG, 2)
        assert sorted(snaps_a) == [0, 1, 2]
        for epoch in snaps_a:
            for source, target in _queries(10, CONFIG.n, seed=epoch):
                assert canonical_response(
                    snaps_a[epoch].answer(source, target)
                ) == canonical_response(snaps_b[epoch].answer(source, target))

    def test_replay_rejects_out_of_range_epoch(self):
        with pytest.raises(ValueError):
            replay_snapshots(CONFIG, CONFIG.epochs + 1)
        with pytest.raises(ValueError):
            replay_snapshots(CONFIG, -1)

    def test_verify_flags_tampered_and_broken_lines(self):
        snap = replay_snapshots(CONFIG, 0)[0]
        source, target = _queries(1, CONFIG.n)[0]
        good = canonical_response(snap.answer(source, target))
        tampered = json.loads(good)
        tampered["hops"] = tampered["hops"] + 1
        lines = [
            good,
            canonical_response(tampered),
            "not json at all",
            json.dumps({"error": "boom"}),
        ]
        problems = verify_responses(CONFIG, lines)
        assert len(problems) == 3
        assert any("diverges" in p for p in problems)
        assert any("unparseable" in p for p in problems)
        assert any("error response" in p for p in problems)

    def test_verify_empty_input_is_a_problem(self):
        assert verify_responses(CONFIG, []) == ["no responses to verify"]


class TestLoadReport:
    def test_nearest_rank_percentiles(self):
        report = LoadReport(mode="closed", wall_s=2.0)
        report.latencies_s = [i / 1000.0 for i in range(1, 21)]
        report.responses = ["x"] * 20
        assert report.latency_percentile(0.50) == 0.011
        assert report.latency_percentile(0.95) == 0.019
        assert report.latency_percentile(0.99) == 0.020
        assert report.qps == 10.0
        assert any("QPS" in line for line in report.summary_lines())

    def test_empty_report(self):
        report = LoadReport(mode="open", wall_s=0.0)
        assert report.qps == 0.0
        assert report.latency_percentile(0.99) == 0.0


async def _with_service(config, body, telemetry=None):
    """Run ``body(service)`` against a listening service, then stop it."""
    service = RoutingService(config, telemetry=telemetry)
    ready = asyncio.Event()
    task = asyncio.create_task(service.run(ready))
    await asyncio.wait_for(ready.wait(), timeout=10)
    try:
        return await body(service)
    finally:
        if not task.done():
            await send_stop(service.bound_host, service.bound_port)
            await asyncio.wait_for(task, timeout=10)


class TestService:
    def test_dispatch_protocol_edges(self):
        service = RoutingService(CONFIG)
        line, outcome, epoch = service._dispatch(b'{"op": "status"}\n')
        status = json.loads(line)
        assert status["n"] == CONFIG.n and status["epoch"] == 0
        assert outcome is None and epoch == 0

        line, outcome, _ = service._dispatch(b"}{ not json\n")
        assert "error" in json.loads(line) and outcome == "error"

        line, outcome, _ = service._dispatch(b'{"op": "teleport"}\n')
        assert "unknown op" in json.loads(line)["error"] and outcome == "error"

        line, outcome, _ = service._dispatch(b'[1, 2, 3]\n')
        assert "error" in json.loads(line) and outcome == "error"

        line, outcome, _ = service._dispatch(
            b'{"op": "query", "source": -5, "target": 0.5}\n'
        )
        assert "out of range" in json.loads(line)["error"] and outcome == "error"

        line, outcome, _ = service._dispatch(b'{"op": "stop"}\n')
        assert json.loads(line) == {"ok": True, "op": "stop"}
        assert outcome == "stop"

    def test_query_dispatch_matches_snapshot_bytes(self):
        service = RoutingService(CONFIG)
        source, target = _queries(1, CONFIG.n)[0]
        request = json.dumps(
            {"op": "query", "source": source, "target": target}
        ).encode()
        line, outcome, epoch = service._dispatch(request)
        assert line == canonical_response(service.snapshot.answer(source, target))
        assert epoch == 0 and outcome in ("delivered", "corrupted", "unresolved")

    def test_live_service_under_churn_is_byte_identical_to_oracle(self):
        telemetry = TelemetryBuffer()

        async def body(service):
            return await run_load(
                service.bound_host, service.bound_port,
                requests=60, concurrency=4, mode="closed",
                min_epoch=CONFIG.epochs, timeout_s=60,
            )

        report = asyncio.run(_with_service(CONFIG, body, telemetry=telemetry))
        # traffic overlapped every live transition...
        assert report.requests >= 60
        assert max(report.epochs) == CONFIG.epochs
        assert set(report.outcomes) <= {"delivered", "corrupted", "unresolved"}
        # ...every response replays byte-identically offline...
        assert verify_responses(CONFIG, report.responses) == []
        # ...and the telemetry stream saw every query + publish
        requests = telemetry.of_type("serve.request")
        assert len(requests) == report.requests
        assert sorted(
            e["epoch"] for e in telemetry.of_type("serve.publish")
        ) == list(range(1, CONFIG.epochs + 1))

    def test_open_loop_load_and_status_counters(self):
        async def body(service):
            report = await run_load(
                service.bound_host, service.bound_port,
                requests=40, concurrency=4, mode="open", rate=2000.0,
                min_epoch=1, timeout_s=60,
            )
            status = json.loads(
                await asyncio.wait_for(_status(service), timeout=10)
            )
            return report, status

        async def _status(service):
            reader, writer = await asyncio.open_connection(
                service.bound_host, service.bound_port
            )
            writer.write(b'{"op": "status"}\n')
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            return line.decode()

        report, status = asyncio.run(_with_service(CONFIG, body))
        assert report.mode == "open" and report.requests >= 40
        assert max(report.epochs) >= 1
        assert verify_responses(CONFIG, report.responses) == []
        assert status["requests"] == report.requests
        assert status["published"] >= 1

    def test_run_load_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown load mode"):
            asyncio.run(run_load("127.0.0.1", 1, mode="sideways"))
