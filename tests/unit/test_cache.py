"""Unit tests: on-disk result cache (repro.experiments.cache).

The cache key is ``(experiment, seed, fast, overrides, version)`` — the
execution backend is deliberately excluded (tables are bit-identical at
any worker count), and any component change must produce a different key.
Corrupt entries are misses, never crashes.
"""

import numpy as np
import pytest

from repro import __version__
from repro.analysis.tables import TableResult
from repro.experiments.cache import ResultCache, cache_key, default_cache_dir


def _table() -> TableResult:
    t = TableResult(experiment="E1", title="t", headers=["a", "b"])
    t.add_row(1, "x")
    t.add_row(2.5, "y")
    t.add_note("n1")
    return t


class TestCacheKey:
    def test_stable(self):
        assert cache_key("E1", 0, True, {}) == cache_key("E1", 0, True, {})

    def test_case_insensitive_experiment(self):
        assert cache_key("e1", 0, True, {}) == cache_key("E1", 0, True, {})

    def test_components_change_key(self):
        base = cache_key("E1", 0, True, {})
        assert cache_key("E2", 0, True, {}) != base
        assert cache_key("E1", 1, True, {}) != base
        assert cache_key("E1", 0, False, {}) != base
        assert cache_key("E1", 0, True, {"probes": 100}) != base

    def test_version_in_key(self):
        assert cache_key("E1", 0, True, {}, version=__version__) != cache_key(
            "E1", 0, True, {}, version="0.0.0-other"
        )

    def test_override_order_irrelevant(self):
        a = cache_key("E1", 0, True, {"x": 1, "y": 2})
        b = cache_key("E1", 0, True, {"y": 2, "x": 1})
        assert a == b

    def test_tuple_and_list_overrides_equal(self):
        # the CLI cannot distinguish them; neither should the key
        assert cache_key("E1", 0, True, {"ns": (1, 2)}) == cache_key(
            "E1", 0, True, {"ns": [1, 2]}
        )

    def test_numpy_scalar_overrides(self):
        assert cache_key("E1", 0, True, {"n": np.int64(128)}) == cache_key(
            "E1", 0, True, {"n": 128}
        )


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        rc = ResultCache(tmp_path)
        assert rc.load("E1", 0, True, {}) is None
        rc.store("E1", 0, True, {}, _table())
        hit = rc.load("E1", 0, True, {})
        assert hit is not None
        assert hit.render() == _table().render()
        assert hit.rows == _table().rows

    def test_distinct_overrides_distinct_entries(self, tmp_path):
        rc = ResultCache(tmp_path)
        rc.store("E1", 0, True, {}, _table())
        assert rc.load("E1", 0, True, {"probes": 9}) is None

    def test_corrupt_entry_is_miss(self, tmp_path):
        rc = ResultCache(tmp_path)
        path = rc.store("E1", 0, True, {}, _table())
        path.write_text("{not json")
        assert rc.load("E1", 0, True, {}) is None

    def test_store_creates_directories(self, tmp_path):
        rc = ResultCache(tmp_path / "deep" / "cache")
        path = rc.store("E1", 0, True, {}, _table())
        assert path.exists()

    def test_unwritable_root_degrades_to_noop(self, tmp_path):
        # a file where the cache root should be: mkdir fails with OSError
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        rc = ResultCache(blocker / "cache")
        with pytest.warns(RuntimeWarning, match="not writable"):
            assert rc.store("E1", 0, True, {}, _table()) is None
        assert rc.load("E1", 0, True, {}) is None  # still just a miss

    def test_concurrent_writers_use_distinct_tmp_names(self, tmp_path):
        rc = ResultCache(tmp_path)
        path = rc.store("E1", 0, True, {}, _table())
        # no stale tmp files left behind after a successful store
        assert list(tmp_path.glob("*.tmp")) == []
        assert path is not None and path.suffix == ".json"

    def test_env_override_of_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert default_cache_dir() == tmp_path / "env-cache"

    def test_default_dir_under_benchmarks(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        path = default_cache_dir()
        assert path.parts[-3:] == ("benchmarks", "output", "cache")


class TestCrashSafety:
    """A writer killed mid-``put`` must never leave a JSON entry that a
    later run loads as a hit: the store writes to a per-writer temp file
    and publishes with one atomic rename, so the entry either exists
    complete or not at all."""

    def test_writer_killed_mid_write_leaves_no_loadable_entry(
        self, tmp_path, monkeypatch
    ):
        import pathlib

        rc = ResultCache(tmp_path)
        real_write = pathlib.Path.write_text

        def torn_write(self, text, *args, **kwargs):
            if self.name.endswith(".tmp"):
                # half the bytes land, then the kill: no exception handling,
                # no cleanup — exactly what SIGKILL leaves behind
                real_write(self, text[: len(text) // 2])
                raise KeyboardInterrupt("killed mid-put")
            return real_write(self, text, *args, **kwargs)

        monkeypatch.setattr(pathlib.Path, "write_text", torn_write)
        with pytest.raises(KeyboardInterrupt):
            rc.store("E1", 0, True, {}, _table())
        monkeypatch.undo()
        # the torn temp file is on disk, but it is not an entry: not a
        # hit, not listed, and a fresh store publishes cleanly over it
        assert list(tmp_path.glob("*.tmp")) != []
        assert rc.load("E1", 0, True, {}) is None
        assert rc.entries() == []
        rc.store("E1", 0, True, {}, _table())
        assert rc.load("E1", 0, True, {}) is not None

    def test_writer_killed_before_rename_leaves_no_entry(
        self, tmp_path, monkeypatch
    ):
        import pathlib

        rc = ResultCache(tmp_path)

        def killed_replace(self, target):
            raise KeyboardInterrupt("killed between write and rename")

        monkeypatch.setattr(pathlib.Path, "replace", killed_replace)
        with pytest.raises(KeyboardInterrupt):
            rc.store("E1", 0, True, {}, _table())
        monkeypatch.undo()
        # the payload was fully written — but only to the temp name, so
        # the cache still has no entry for the key
        assert rc.load("E1", 0, True, {}) is None
        assert rc.entries() == []

    def test_truncated_entry_on_disk_is_a_miss(self, tmp_path):
        rc = ResultCache(tmp_path)
        path = rc.store("E1", 0, True, {}, _table())
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # torn at the final name
        assert rc.load("E1", 0, True, {}) is None

    def test_concurrent_same_key_writers_never_publish_partial(self, tmp_path):
        # two writers racing on one key use per-pid temp names; whichever
        # rename lands last wins with a *complete* file either way
        rc_a, rc_b = ResultCache(tmp_path), ResultCache(tmp_path)
        pa = rc_a.store("E1", 0, True, {}, _table())
        pb = rc_b.store("E1", 0, True, {}, _table())
        assert pa == pb
        assert rc_a.load("E1", 0, True, {}).render() == _table().render()
        assert list(tmp_path.glob("*.tmp")) == []


class TestEntriesAndPrune:
    """`repro cache ls` / `prune` machinery (the store must not only grow)."""

    def _seed_store(self, tmp_path, count=4):
        import os

        rc = ResultCache(tmp_path)
        paths = []
        for i in range(count):
            p = rc.store(f"E{i + 1}", 0, True, {}, _table())
            # deterministic, well-separated ages: E1 oldest ... E4 newest
            age_days = count - i
            mtime = 1_700_000_000 + (count - age_days) * 86400
            os.utime(p, (mtime, mtime))
            paths.append(p)
        return rc, paths

    def test_entries_oldest_first_with_metadata(self, tmp_path):
        rc, paths = self._seed_store(tmp_path)
        entries = rc.entries()
        assert [e.experiment for e in entries] == ["E1", "E2", "E3", "E4"]
        assert all(e.size > 0 for e in entries)
        assert [e.path for e in entries] == paths

    def test_entries_empty_and_missing_root(self, tmp_path):
        assert ResultCache(tmp_path / "nope").entries() == []
        assert ResultCache(tmp_path).entries() == []

    def test_entries_ignore_tmp_and_foreign_files(self, tmp_path):
        rc = ResultCache(tmp_path)
        rc.store("E1", 0, True, {}, _table())
        (tmp_path / "e9-deadbeef.1234.tmp").write_text("partial")
        (tmp_path / "README").write_text("not an entry")
        # dashed .json files that are not <exp>-<20-hex-key>.json are foreign
        (tmp_path / "my-notes.json").write_text("{}")
        (tmp_path / "e2-SHOUTYKEY0123456789a.json").write_text("{}")
        (tmp_path / "e2-abc.json").write_text("{}")  # key too short
        assert [e.experiment for e in rc.entries()] == ["E1"]

    def test_prune_never_deletes_foreign_files(self, tmp_path):
        rc = ResultCache(tmp_path)
        rc.store("E1", 0, True, {}, _table())
        foreign = tmp_path / "my-notes.json"
        foreign.write_text("{\"precious\": true}")
        removed = rc.prune(max_bytes=0)
        assert [e.experiment for e in removed] == ["E1"]
        assert foreign.exists()

    def test_prune_noop_without_bounds(self, tmp_path):
        rc, _ = self._seed_store(tmp_path)
        assert rc.prune() == []
        assert len(rc.entries()) == 4

    def test_prune_older_than(self, tmp_path):
        rc, _ = self._seed_store(tmp_path)
        now = 1_700_000_000 + 4 * 86400
        removed = rc.prune(older_than=2.5 * 86400, now=now)
        assert sorted(e.experiment for e in removed) == ["E1", "E2"]
        assert [e.experiment for e in rc.entries()] == ["E3", "E4"]

    def test_prune_max_bytes_evicts_oldest_first(self, tmp_path):
        rc, _ = self._seed_store(tmp_path)
        entries = rc.entries()
        keep_two = entries[-1].size + entries[-2].size
        removed = rc.prune(max_bytes=keep_two)
        assert sorted(e.experiment for e in removed) == ["E1", "E2"]
        assert [e.experiment for e in rc.entries()] == ["E3", "E4"]

    def test_prune_max_bytes_zero_clears_store(self, tmp_path):
        rc, _ = self._seed_store(tmp_path)
        removed = rc.prune(max_bytes=0)
        assert len(removed) == 4
        assert rc.entries() == []

    def test_prune_combined_bounds(self, tmp_path):
        rc, _ = self._seed_store(tmp_path)
        now = 1_700_000_000 + 4 * 86400
        sizes = {e.experiment: e.size for e in rc.entries()}
        removed = rc.prune(
            older_than=3.5 * 86400,            # drops E1
            max_bytes=sizes["E4"],             # then evicts E2, E3
            now=now,
        )
        assert sorted(e.experiment for e in removed) == ["E1", "E2", "E3"]
        assert [e.experiment for e in rc.entries()] == ["E4"]

    def test_pruned_entry_is_a_miss_not_an_error(self, tmp_path):
        rc = ResultCache(tmp_path)
        rc.store("E1", 0, True, {}, _table())
        rc.prune(max_bytes=0)
        assert rc.load("E1", 0, True, {}) is None

    def test_total_bytes(self, tmp_path):
        rc, _ = self._seed_store(tmp_path)
        assert rc.total_bytes() == sum(e.size for e in rc.entries())


class TestVersionBump:
    """Version-keyed invalidation: a stale-version entry is ignored, never
    served (the E4/E8/E12 kernel PR bumps __version__ because their cell
    streams changed — old tables must become misses, not wrong answers)."""

    def test_store_then_version_bump_is_miss(self, tmp_path, monkeypatch):
        import repro

        rc = ResultCache(tmp_path)
        rc.store("E8", 0, True, {}, _table())
        assert rc.load("E8", 0, True, {}) is not None
        # simulate the next release: same store, new package version
        monkeypatch.setattr(repro, "__version__", "999.0.0-test")
        assert rc.load("E8", 0, True, {}) is None
        # the stale entry is still on disk (prune policy's job, not load's)
        assert len(rc.entries()) == 1

    def test_store_under_new_version_keeps_both_entries(self, tmp_path, monkeypatch):
        import repro

        rc = ResultCache(tmp_path)
        rc.store("E12", 0, True, {}, _table())
        monkeypatch.setattr(repro, "__version__", "999.0.0-test")
        rc.store("E12", 0, True, {}, _table())
        assert rc.load("E12", 0, True, {}) is not None
        assert len(rc.entries()) == 2  # one per version generation

    def test_version_explicitly_in_key(self):
        assert cache_key("E4", 0, True, {}, version="a") != cache_key(
            "E4", 0, True, {}, version="b"
        )


class TestKeepLatestPerExperiment:
    """`prune --keep-latest-per-experiment`: the post-version-bump janitor
    preserves each experiment's newest entry across every bound."""

    def _seed_versions(self, tmp_path):
        """Two generations for E1/E2 plus one lone E3 entry, with strictly
        increasing mtimes: E1-old < E2-old < E1-new < E2-new < E3."""
        import os

        rc = ResultCache(tmp_path)
        base = 1_700_000_000
        paths = {}
        for i, (exp, seed) in enumerate(
            [("E1", 0), ("E2", 0), ("E1", 1), ("E2", 1), ("E3", 0)]
        ):
            p = rc.store(exp, seed, True, {}, _table())
            os.utime(p, (base + i * 3600, base + i * 3600))
            paths[(exp, seed)] = p
        return rc, paths, base + 4 * 3600

    def test_latest_per_experiment_mapping(self, tmp_path):
        rc, paths, _ = self._seed_versions(tmp_path)
        latest = rc.latest_per_experiment()
        assert latest["E1"].path == paths[("E1", 1)]
        assert latest["E2"].path == paths[("E2", 1)]
        assert latest["E3"].path == paths[("E3", 0)]

    def test_policy_alone_keeps_one_entry_per_experiment(self, tmp_path):
        rc, paths, _ = self._seed_versions(tmp_path)
        removed = rc.prune(keep_latest_per_experiment=True)
        # eviction order matches entries() (oldest first)
        assert [e.path for e in removed] == [paths[("E1", 0)], paths[("E2", 0)]]
        assert sorted(e.path for e in rc.entries()) == sorted(
            [paths[("E1", 1)], paths[("E2", 1)], paths[("E3", 0)]]
        )

    def test_policy_protects_newest_from_age_bound(self, tmp_path):
        rc, paths, now = self._seed_versions(tmp_path)
        # an age bound that would otherwise clear the whole store
        removed = rc.prune(
            older_than=0.0, now=now + 10, keep_latest_per_experiment=True
        )
        assert len(removed) == 2
        kept = {e.path for e in rc.entries()}
        assert kept == {paths[("E1", 1)], paths[("E2", 1)], paths[("E3", 0)]}

    def test_policy_protects_newest_from_size_bound(self, tmp_path):
        rc, paths, _ = self._seed_versions(tmp_path)
        removed = rc.prune(max_bytes=0, keep_latest_per_experiment=True)
        # only the two stale generations go; the three newest survive even
        # though the size budget is zero
        assert [e.path for e in removed] == [paths[("E1", 0)], paths[("E2", 0)]]
        assert len(rc.entries()) == 3

    def test_no_policy_no_bounds_still_noop(self, tmp_path):
        rc, _, _ = self._seed_versions(tmp_path)
        assert rc.prune() == []
        assert len(rc.entries()) == 5
