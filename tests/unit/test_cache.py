"""Unit tests: on-disk result cache (repro.experiments.cache).

The cache key is ``(experiment, seed, fast, overrides, version)`` — the
execution backend is deliberately excluded (tables are bit-identical at
any worker count), and any component change must produce a different key.
Corrupt entries are misses, never crashes.
"""

import numpy as np
import pytest

from repro import __version__
from repro.analysis.tables import TableResult
from repro.experiments.cache import ResultCache, cache_key, default_cache_dir


def _table() -> TableResult:
    t = TableResult(experiment="E1", title="t", headers=["a", "b"])
    t.add_row(1, "x")
    t.add_row(2.5, "y")
    t.add_note("n1")
    return t


class TestCacheKey:
    def test_stable(self):
        assert cache_key("E1", 0, True, {}) == cache_key("E1", 0, True, {})

    def test_case_insensitive_experiment(self):
        assert cache_key("e1", 0, True, {}) == cache_key("E1", 0, True, {})

    def test_components_change_key(self):
        base = cache_key("E1", 0, True, {})
        assert cache_key("E2", 0, True, {}) != base
        assert cache_key("E1", 1, True, {}) != base
        assert cache_key("E1", 0, False, {}) != base
        assert cache_key("E1", 0, True, {"probes": 100}) != base

    def test_version_in_key(self):
        assert cache_key("E1", 0, True, {}, version=__version__) != cache_key(
            "E1", 0, True, {}, version="0.0.0-other"
        )

    def test_override_order_irrelevant(self):
        a = cache_key("E1", 0, True, {"x": 1, "y": 2})
        b = cache_key("E1", 0, True, {"y": 2, "x": 1})
        assert a == b

    def test_tuple_and_list_overrides_equal(self):
        # the CLI cannot distinguish them; neither should the key
        assert cache_key("E1", 0, True, {"ns": (1, 2)}) == cache_key(
            "E1", 0, True, {"ns": [1, 2]}
        )

    def test_numpy_scalar_overrides(self):
        assert cache_key("E1", 0, True, {"n": np.int64(128)}) == cache_key(
            "E1", 0, True, {"n": 128}
        )


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        rc = ResultCache(tmp_path)
        assert rc.load("E1", 0, True, {}) is None
        rc.store("E1", 0, True, {}, _table())
        hit = rc.load("E1", 0, True, {})
        assert hit is not None
        assert hit.render() == _table().render()
        assert hit.rows == _table().rows

    def test_distinct_overrides_distinct_entries(self, tmp_path):
        rc = ResultCache(tmp_path)
        rc.store("E1", 0, True, {}, _table())
        assert rc.load("E1", 0, True, {"probes": 9}) is None

    def test_corrupt_entry_is_miss(self, tmp_path):
        rc = ResultCache(tmp_path)
        path = rc.store("E1", 0, True, {}, _table())
        path.write_text("{not json")
        assert rc.load("E1", 0, True, {}) is None

    def test_store_creates_directories(self, tmp_path):
        rc = ResultCache(tmp_path / "deep" / "cache")
        path = rc.store("E1", 0, True, {}, _table())
        assert path.exists()

    def test_unwritable_root_degrades_to_noop(self, tmp_path):
        # a file where the cache root should be: mkdir fails with OSError
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        rc = ResultCache(blocker / "cache")
        with pytest.warns(RuntimeWarning, match="not writable"):
            assert rc.store("E1", 0, True, {}, _table()) is None
        assert rc.load("E1", 0, True, {}) is None  # still just a miss

    def test_concurrent_writers_use_distinct_tmp_names(self, tmp_path):
        rc = ResultCache(tmp_path)
        path = rc.store("E1", 0, True, {}, _table())
        # no stale tmp files left behind after a successful store
        assert list(tmp_path.glob("*.tmp")) == []
        assert path is not None and path.suffix == ".json"

    def test_env_override_of_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert default_cache_dir() == tmp_path / "env-cache"

    def test_default_dir_under_benchmarks(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        path = default_cache_dir()
        assert path.parts[-3:] == ("benchmarks", "output", "cache")
