"""Unit tests: quarantine policy (repro.core.quarantine)."""

import numpy as np
import pytest

from repro.core.quarantine import QuarantinePolicy, QuarantineState


@pytest.fixture
def state():
    return QuarantineState(QuarantinePolicy(strikes=3), group_size=12)


class TestStrikes:
    def test_below_threshold_not_quarantined(self, state):
        state.record_verified_bad(7, epoch=1)
        state.record_verified_bad(7, epoch=1)
        assert not state.is_quarantined(7, 1)

    def test_threshold_triggers(self, state):
        for _ in range(3):
            triggered = state.record_verified_bad(7, epoch=1)
        assert triggered
        assert state.is_quarantined(7, 1)

    def test_agreement_cost_charged_once(self, state):
        for _ in range(5):
            state.record_verified_bad(7, epoch=1)
        # one quarantine decision: one |G|^2-ish broadcast
        assert state.ledger.messages["group_comm"] == 12 * 11

    def test_independent_senders(self, state):
        for _ in range(3):
            state.record_verified_bad(1, epoch=1)
        assert state.is_quarantined(1, 1)
        assert not state.is_quarantined(2, 1)

    def test_quarantined_count(self, state):
        for s in (1, 2):
            for _ in range(3):
                state.record_verified_bad(s, epoch=1)
        assert state.quarantined_count == 2


class TestDecay:
    def test_no_decay_by_default(self, state):
        for _ in range(3):
            state.record_verified_bad(7, epoch=1)
        assert state.is_quarantined(7, epoch=1000)

    def test_decay_forgives(self):
        st = QuarantineState(
            QuarantinePolicy(strikes=2, decay_epochs=3), group_size=8
        )
        st.record_verified_bad(7, epoch=1)
        st.record_verified_bad(7, epoch=1)
        assert st.is_quarantined(7, 2)
        assert not st.is_quarantined(7, 4)  # 1 + 3 epochs later
        # strikes reset after forgiveness
        st.record_verified_bad(7, epoch=4)
        assert not st.is_quarantined(7, 4)


class TestEpochProcessing:
    def test_spam_blocked_after_threshold(self, state):
        rng = np.random.default_rng(0)
        spam = np.arange(5)
        r1 = state.process_epoch(1, spam, requests_per_sender=4,
                                 verification_cost=100, rng=rng)
        assert r1.newly_quarantined == 5
        # strikes=3 < 4 requests: quarantined mid-epoch, 3 processed each
        assert r1.requests_processed == 15
        r2 = state.process_epoch(2, spam, requests_per_sender=4,
                                 verification_cost=100, rng=rng)
        assert r2.requests_processed == 0
        assert r2.verification_messages == 0

    def test_verification_cost_accounting(self, state):
        rng = np.random.default_rng(0)
        r = state.process_epoch(1, np.array([1]), requests_per_sender=2,
                                verification_cost=50, rng=rng)
        assert r.verification_messages == 100

    def test_honest_false_quarantine_rare(self, state):
        rng = np.random.default_rng(0)
        honest = np.arange(100, 400)
        hit = state.process_honest_epoch(
            1, honest, requests_per_sender=5, qf=0.05, rng=rng
        )
        # expected strikes ~ 300*5*0.0025 = 3.75, quarantines need 3 each
        assert hit <= 3

    def test_honest_unharmed_at_zero_qf(self, state):
        rng = np.random.default_rng(0)
        hit = state.process_honest_epoch(
            1, np.arange(50), requests_per_sender=10, qf=0.0, rng=rng
        )
        assert hit == 0
