"""Unit tests: shared-memory result transport (repro.sim.shm).

The load-bearing contracts: a ``share``/``load`` round trip is byte-exact
and retires its segment, :func:`shm_dumps`/:func:`shm_loads` divert
exactly the large C-layout ndarrays (everything else pickles inline) and
restore byte-equal objects, and leak recovery (:func:`run_segments` /
:func:`sweep_run_segments`) is scoped to one run's name prefix, so a
sweep can only ever unlink its own strays.
"""

import os
import secrets

import numpy as np
import pytest

import pickle

from repro.sim import shm
from repro.sim.shm import (
    DEFAULT_MIN_BYTES,
    ShmArena,
    ShmInputBatch,
    ShmRef,
    collect_load_stats,
    min_bytes,
    run_segments,
    shm_dumps,
    shm_loads,
    sweep_run_segments,
)

needs_shm_dir = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"),
    reason="platform exposes no /dev/shm to inspect",
)


@pytest.fixture
def arena():
    """An arena under its own throwaway prefix, drained after the test."""
    a = ShmArena(prefix=f"rst{secrets.token_hex(4)}")
    yield a
    sweep_run_segments(a.prefix)


class TestShmArena:
    def test_round_trip_byte_exact(self, arena):
        arr = np.random.default_rng(0).random((64, 32))
        ref = arena.share(arr)
        out = arena.load(ref)
        assert out.dtype == arr.dtype and out.shape == arr.shape
        assert np.array_equal(out, arr)

    def test_load_unlinks_by_default(self, arena):
        ref = arena.share(np.arange(16))
        assert arena.created_names() == {ref.name}
        arena.load(ref)
        assert arena.created_names() == set()
        with pytest.raises(FileNotFoundError):
            arena.load(ref)

    def test_load_without_unlink_keeps_segment(self, arena):
        arr = np.arange(100, dtype=np.int64)
        ref = arena.share(arr)
        first = arena.load(ref, unlink=False)
        second = arena.load(ref, unlink=False)
        assert np.array_equal(first, arr) and np.array_equal(second, arr)
        assert arena.created_names() == {ref.name}
        assert arena.unlink_created() == [ref.name]

    def test_unlink_created_drains_everything(self, arena):
        refs = [arena.share(np.arange(i + 1)) for i in range(3)]
        assert arena.created_names() == {r.name for r in refs}
        removed = arena.unlink_created()
        assert sorted(removed) == sorted(r.name for r in refs)
        assert arena.created_names() == set()
        assert arena.unlink_created() == []  # idempotent

    @needs_shm_dir
    def test_context_manager_leaves_nothing(self):
        prefix = f"rst{secrets.token_hex(4)}"
        with ShmArena(prefix=prefix) as a:
            a.share(np.zeros(256))
            a.share(np.ones(256))
            assert len(run_segments(prefix)) == 2
        assert run_segments(prefix) == []

    def test_empty_array_round_trips(self, arena):
        ref = arena.share(np.empty(0, dtype=np.float64))
        assert ref.nbytes == 0
        out = arena.load(ref)
        assert out.shape == (0,) and out.dtype == np.float64

    def test_non_contiguous_input(self, arena):
        arr = np.arange(64).reshape(8, 8)[::2, ::2]
        assert not arr.flags.c_contiguous
        out = arena.load(arena.share(arr))
        assert np.array_equal(out, arr)

    def test_ref_nbytes(self):
        ref = ShmRef(name="x", shape=(3, 5), dtype="float64")
        assert ref.nbytes == 3 * 5 * 8


class TestShmPickleTransport:
    def test_small_arrays_stay_inline(self, arena):
        obj = {"a": np.arange(8), "b": [1.5, "text"]}
        blob = shm_dumps(obj, threshold=10**9, arena=arena)
        assert arena.created_names() == set()
        out = shm_loads(blob)
        assert np.array_equal(out["a"], obj["a"]) and out["b"] == obj["b"]

    def test_large_arrays_diverted_and_restored(self, arena):
        arr = np.random.default_rng(1).random(4096)
        blob = shm_dumps(arr, threshold=0, arena=arena)
        assert len(arena.created_names()) == 1
        assert len(blob) < arr.nbytes // 4  # the pipe carries a header
        out = shm_loads(blob)
        assert type(out) is np.ndarray and np.array_equal(out, arr)

    @needs_shm_dir
    def test_load_retires_diverted_segments(self, arena):
        blob = shm_dumps(np.zeros(4096), threshold=0, arena=arena)
        assert len(run_segments(arena.prefix)) == 1
        shm_loads(blob)
        assert run_segments(arena.prefix) == []

    def test_consumed_exactly_once(self, arena):
        blob = shm_dumps(np.zeros(4096), threshold=0, arena=arena)
        shm_loads(blob)
        with pytest.raises(FileNotFoundError):
            shm_loads(blob)

    def test_object_dtype_stays_inline(self, arena):
        arr = np.array([{"x": 1}, None, "s"], dtype=object)
        blob = shm_dumps(arr, threshold=0, arena=arena)
        assert arena.created_names() == set()
        out = shm_loads(blob)
        assert out.tolist() == arr.tolist()

    def test_threshold_splits_nested_structure(self, arena):
        big = np.random.default_rng(2).random(1024)      # 8 KiB
        small = np.arange(4, dtype=np.float64)           # 32 B
        obj = {"big": big, "small": small, "tag": "mixed",
               "more": [big * 2, small + 1]}
        blob = shm_dumps(obj, threshold=1024, arena=arena)
        assert len(arena.created_names()) == 2  # only the two big arrays
        out = shm_loads(blob)
        assert np.array_equal(out["big"], big)
        assert np.array_equal(out["small"], small)
        assert np.array_equal(out["more"][0], big * 2)
        assert np.array_equal(out["more"][1], small + 1)
        assert out["tag"] == "mixed"

    def test_collect_load_stats_counts_segments_and_bytes(self, arena):
        a = np.zeros(2048)
        b = np.ones(1024)
        blob = shm_dumps((a, b), threshold=0, arena=arena)
        with collect_load_stats() as stats:
            shm_loads(blob)
        assert stats.segments == 2
        assert stats.shm_bytes == a.nbytes + b.nbytes

    def test_loads_outside_scope_not_counted(self, arena):
        blob = shm_dumps(np.zeros(2048), threshold=0, arena=arena)
        shm_loads(blob)  # no scope active: must not raise, not counted
        blob2 = shm_dumps(np.zeros(2048), threshold=0, arena=arena)
        with collect_load_stats() as stats:
            shm_loads(blob2)
        assert stats.segments == 1

    def test_min_bytes_env_override(self, monkeypatch):
        assert min_bytes() == DEFAULT_MIN_BYTES
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "128")
        assert min_bytes() == 128
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "not-a-number")
        assert min_bytes() == DEFAULT_MIN_BYTES

    def test_default_threshold_follows_env(self, arena, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "128")
        arr = np.zeros(64)  # 512 B >= 128
        blob = shm_dumps(arr, arena=arena)
        assert len(arena.created_names()) == 1
        assert np.array_equal(shm_loads(blob), arr)


class TestShmInputBatch:
    def test_round_trip_byte_exact_and_reloadable(self):
        arr = np.random.default_rng(3).random(2048)
        with ShmInputBatch(threshold=0) as batch:
            blob = batch.dumps({"arr": arr, "tag": 7})
            # keep-on-load: many consumers may load the same payload
            first = pickle.loads(blob)
            second = pickle.loads(blob)
            assert np.array_equal(first["arr"], arr) and first["tag"] == 7
            assert np.array_equal(second["arr"], arr)
        with pytest.raises(FileNotFoundError):  # unlinked on exit
            pickle.loads(blob)

    def test_shared_array_ships_once_across_payloads(self):
        big = np.random.default_rng(4).random(1024)
        with ShmInputBatch(threshold=0) as batch:
            blobs = [batch.dumps((big, i)) for i in range(5)]
            assert batch.segments == 1
            assert batch.shm_bytes == big.nbytes
            outs = [pickle.loads(b) for b in blobs]
            for i, (out_arr, out_i) in enumerate(outs):
                assert np.array_equal(out_arr, big) and out_i == i

    def test_distinct_arrays_get_distinct_segments(self):
        a = np.zeros(512)
        b = np.ones(512)
        with ShmInputBatch(threshold=0) as batch:
            batch.dumps([a, b, a])
            assert batch.segments == 2
            assert batch.shm_bytes == a.nbytes + b.nbytes

    def test_small_and_object_arrays_stay_inline(self):
        with ShmInputBatch(threshold=10**9) as batch:
            blob = batch.dumps(np.arange(16))
            assert batch.segments == 0
        out = pickle.loads(blob)  # valid after unlink: nothing diverted
        assert np.array_equal(out, np.arange(16))
        with ShmInputBatch(threshold=0) as batch:
            batch.dumps(np.array([{"x": 1}, None], dtype=object))
            assert batch.segments == 0

    @needs_shm_dir
    def test_unlink_leaves_no_segments(self):
        batch = ShmInputBatch(threshold=0)
        batch.dumps(np.zeros(4096))
        names = batch.created_names()
        assert len(names) == 1
        assert sorted(batch.unlink()) == sorted(names)
        assert batch.created_names() == set()
        assert batch.unlink() == []  # idempotent


@needs_shm_dir
class TestRunScopedRecovery:
    def test_run_segments_and_sweep_scoped_to_prefix(self):
        a = ShmArena(prefix=f"rst{secrets.token_hex(4)}")
        b = ShmArena(prefix=f"rst{secrets.token_hex(4)}")
        try:
            a.share(np.zeros(64))
            a.share(np.zeros(64))
            b.share(np.zeros(64))
            assert len(run_segments(a.prefix)) == 2
            assert len(run_segments(b.prefix)) == 1
            swept = sweep_run_segments(a.prefix)
            assert len(swept) == 2
            assert run_segments(a.prefix) == []
            # the other run's segment must survive a's sweep
            assert len(run_segments(b.prefix)) == 1
        finally:
            sweep_run_segments(a.prefix)
            sweep_run_segments(b.prefix)

    def test_sweep_is_idempotent(self):
        prefix = f"rst{secrets.token_hex(4)}"
        ShmArena(prefix=prefix).share(np.zeros(16))
        assert len(sweep_run_segments(prefix)) == 1
        assert sweep_run_segments(prefix) == []

    def test_ensure_run_prefix_is_stable_and_in_env(self):
        prefix = shm.ensure_run_prefix()
        assert prefix and os.environ.get("REPRO_SHM_RUN") == prefix
        assert shm.ensure_run_prefix() == prefix
