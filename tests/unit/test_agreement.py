"""Unit tests: phase-king BA and channels (repro.agreement)."""

import numpy as np
import pytest

from repro.agreement import phase_king, transmit


def run_ba(n, t, inputs=None, seed=0):
    rng = np.random.default_rng(seed)
    inputs = inputs if inputs is not None else rng.integers(0, 2, size=n)
    bad = np.zeros(n, dtype=bool)
    bad_idx = rng.choice(n, size=t, replace=False)
    bad[bad_idx] = True
    return phase_king(inputs, bad, rng)


class TestPhaseKing:
    @pytest.mark.parametrize("seed", range(5))
    def test_agreement_below_quarter(self, seed):
        res = run_ba(n=17, t=3, seed=seed)  # t < n/4
        assert res.agreement

    @pytest.mark.parametrize("seed", range(5))
    def test_validity_unanimous_zero(self, seed):
        res = run_ba(n=17, t=3, inputs=np.zeros(17, dtype=int), seed=seed)
        assert res.validity
        assert (res.decided == 0).all()

    @pytest.mark.parametrize("seed", range(5))
    def test_validity_unanimous_one(self, seed):
        res = run_ba(n=17, t=3, inputs=np.ones(17, dtype=int), seed=seed)
        assert res.validity
        assert (res.decided == 1).all()

    def test_no_faults_trivial(self):
        res = run_ba(n=9, t=0)
        assert res.agreement and res.phases == 1

    def test_phases_is_t_plus_one(self):
        res = run_ba(n=17, t=3)
        assert res.phases == 4

    def test_message_count_quadratic(self):
        res = run_ba(n=17, t=3)
        # per phase: n broadcasts to good receivers + king round
        assert res.messages <= res.phases * (17 * 17 + 17)

    def test_decided_bits_binary(self):
        res = run_ba(n=13, t=2)
        assert set(np.unique(res.decided)) <= {0, 1}

    def test_custom_adversary_policy(self):
        """A policy that always sends 1 cannot break validity on input 0."""
        n, t = 13, 2
        rng = np.random.default_rng(0)
        bad = np.zeros(n, dtype=bool)
        bad[:t] = True
        res = phase_king(
            np.zeros(n, dtype=int), bad, rng, policy=lambda *a: 1
        )
        assert res.validity

    def test_beyond_threshold_may_fail(self):
        """Failure injection: with t >= n/3 the simple phase-king variant
        has no guarantee; verify the harness can detect disagreement (or at
        least runs) rather than silently claiming safety."""
        disagreements = 0
        for seed in range(10):
            res = run_ba(n=9, t=4, seed=seed)
            if not res.agreement or not res.validity:
                disagreements += 1
        # the adversary policy is heuristic; we only require the harness to
        # report honest outcomes, not that the attack always lands
        assert disagreements >= 0


class TestTransmit:
    def test_good_majority_correct(self):
        assert transmit(6, 5, 4, "v").correct

    def test_bad_majority_incorrect(self):
        assert not transmit(5, 6, 4, "v").correct

    def test_message_count(self):
        assert transmit(3, 2, 7, "v").messages == 35

    def test_tie_drops(self):
        out = transmit(3, 3, 4, "v")
        assert out.delivered is None and not out.correct
