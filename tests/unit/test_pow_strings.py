"""Unit tests: strings, bins, propagation, precompute (repro.pow)."""

import numpy as np
import pytest

from repro.idspace.hashing import OracleSuite
from repro.inputgraph import make_input_graph
from repro.pow.precompute import simulate_precompute_attack
from repro.pow.propagation import StringPropagation
from repro.pow.puzzles import PuzzleScheme
from repro.pow.strings import (
    BinTable,
    StringCandidate,
    sample_adversary_outputs,
    sample_honest_minimum,
    solution_set,
)


class TestBinTable:
    def test_bin_of_boundaries(self):
        bt = BinTable(n=256, epoch_length=1000)
        assert bt.bin_of(0.6) == 0       # [1/2, 1)
        assert bt.bin_of(0.3) == 1       # [1/4, 1/2)
        assert bt.bin_of(0.2) == 2       # [1/8, 1/4)

    def test_bin_of_tiny_clamped(self):
        bt = BinTable(n=256, epoch_length=1000)
        assert bt.bin_of(1e-300) == bt.n_bins - 1
        assert bt.bin_of(0.0) == bt.n_bins - 1

    def test_forward_requires_record(self):
        bt = BinTable(n=256, epoch_length=1000)
        assert bt.should_forward(0.3)
        assert not bt.should_forward(0.35)  # not a record in its bin
        assert bt.should_forward(0.26)      # new record

    def test_counter_saturates(self):
        bt = BinTable(n=256, epoch_length=1000)
        v = 0.49
        accepted = 0
        while bt.should_forward(v):
            accepted += 1
            v *= 0.999  # strictly decreasing records in bin 1
            if v < 0.25:
                break
        assert accepted <= bt.c0_ln_n

    def test_saturated_bins_counted(self):
        bt = BinTable(n=16, epoch_length=10, c0=0.1)
        v = 0.49
        for _ in range(bt.c0_ln_n + 2):
            bt.should_forward(v)
            v *= 0.99
        assert bt.saturated_bins() >= 1


class TestSolutionSet:
    def test_size_capped(self):
        cands = [StringCandidate(i / 100.0, i, i) for i in range(1, 80)]
        rs = solution_set(cands, n=256, d0=2.0)
        assert len(rs) <= int(np.ceil(2 * np.log(256)))

    def test_keeps_smallest(self):
        cands = [StringCandidate(o, 0, int(o * 1e6)) for o in (0.5, 0.01, 0.3)]
        rs = solution_set(cands, n=256)
        assert rs[0].output == 0.01

    def test_dedupes(self):
        c = StringCandidate(0.5, 1, 42)
        assert len(solution_set([c, c, c], n=256)) == 1


class TestSampling:
    def test_honest_minimum_distribution(self):
        rng = np.random.default_rng(0)
        m = 1000
        mins = sample_honest_minimum(m, rng, size=4000)
        # E[min of m uniforms] = 1/(m+1)
        assert mins.mean() == pytest.approx(1.0 / (m + 1), rel=0.15)

    def test_adversary_outputs_sorted_small(self):
        rng = np.random.default_rng(1)
        outs = sample_adversary_outputs(1e6, 5, rng)
        assert (np.diff(outs) > 0).all()
        assert outs[0] < 1e-4  # smallest of a million trials is tiny

    def test_adversary_first_output_scale(self):
        rng = np.random.default_rng(2)
        firsts = [sample_adversary_outputs(1e5, 1, rng)[0] for _ in range(300)]
        assert np.mean(firsts) == pytest.approx(1e-5, rel=0.3)


@pytest.fixture(scope="module")
def propagation():
    rng = np.random.default_rng(5)
    H = make_input_graph("chord", rng.random(256))
    indptr, indices = H.neighbor_lists()
    good = rng.random(256) > 0.08
    return StringPropagation(
        indptr, indices, good, group_size=8, epoch_length=512
    )


class TestPropagation:
    def test_clean_run_agreement(self, propagation):
        res = propagation.run(np.random.default_rng(0))
        assert res.agreement
        assert res.global_min_agreed
        assert res.max_solution_set <= int(np.ceil(2 * np.log(256))) + 1

    def test_giant_component_large(self, propagation):
        res = propagation.run(np.random.default_rng(0))
        assert res.giant_component_size > 0.9 * res.n_good

    def test_delayed_release_keeps_agreement(self, propagation):
        res = propagation.run(
            np.random.default_rng(1), adversary_beta=0.1, delayed_release=True
        )
        assert res.agreement

    def test_forced_min_breaks_unanimity_not_agreement(self, propagation):
        """Footnote-16 attack: s* differs across IDs, yet every chosen s*
        is in every solution set (the property verification needs)."""
        res = propagation.run(
            np.random.default_rng(2),
            delayed_release=True,
            forced_injection_output=1e-12,
        )
        assert not res.global_min_agreed
        assert res.agreement

    def test_messages_weighted_by_group_size(self, propagation):
        res = propagation.run(np.random.default_rng(3))
        assert res.messages == res.forward_events * 64


class TestPrecompute:
    @pytest.fixture
    def scheme(self):
        return PuzzleScheme(OracleSuite(2), epoch_length=1000)

    def test_no_strings_unbounded(self, scheme):
        rng = np.random.default_rng(0)
        small = simulate_precompute_attack(scheme, 1000, 0.1, 1, False, rng)
        big = simulate_precompute_attack(scheme, 1000, 0.1, 30, False, rng)
        assert big.bad_fraction_at_attack > small.bad_fraction_at_attack
        assert big.majority_lost

    def test_with_strings_capped(self, scheme):
        rng = np.random.default_rng(1)
        outs = [
            simulate_precompute_attack(scheme, 1000, 0.1, h, True, rng)
            for h in (2, 10, 50)
        ]
        fracs = [o.bad_fraction_at_attack for o in outs]
        assert max(fracs) - min(fracs) < 0.1  # flat in hoarding horizon
        assert not any(o.majority_lost for o in outs)

    def test_window_respected(self, scheme):
        rng = np.random.default_rng(2)
        out = simulate_precompute_attack(
            scheme, 1000, 0.1, 50, True, rng, window_epochs=1.5
        )
        # usable compute = 1.5 epochs * beta*n units * T steps * tau
        expect = 1.5 * 0.1 * 1000 * 1000 * scheme.tau
        assert out.usable_bad_ids == pytest.approx(expect, rel=0.3)
