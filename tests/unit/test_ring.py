"""Unit tests: unit-ring ID space (repro.idspace.ring)."""

import numpy as np
import pytest

from repro.idspace.ring import (
    Ring,
    cw_dist,
    cw_dist_many,
    estimate_ln_ln_n,
    estimate_ln_n,
    in_cw_interval,
)


class TestCwDist:
    def test_zero_for_same_point(self):
        assert cw_dist(0.3, 0.3) == 0.0

    def test_simple_forward(self):
        assert cw_dist(0.2, 0.5) == pytest.approx(0.3)

    def test_wraps_through_one(self):
        assert cw_dist(0.9, 0.1) == pytest.approx(0.2)

    def test_complementary(self):
        a, b = 0.13, 0.77
        assert cw_dist(a, b) + cw_dist(b, a) == pytest.approx(1.0)

    def test_vectorized_matches_scalar(self):
        a = np.array([0.1, 0.9, 0.5])
        b = np.array([0.2, 0.1, 0.5])
        out = cw_dist_many(a, b)
        for i in range(3):
            assert out[i] == pytest.approx(cw_dist(a[i], b[i]))

    def test_broadcasting(self):
        out = cw_dist_many(0.5, np.array([0.6, 0.4]))
        assert out[0] == pytest.approx(0.1)
        assert out[1] == pytest.approx(0.9)


class TestInCwInterval:
    def test_inside_plain(self):
        assert in_cw_interval(0.3, 0.2, 0.5)

    def test_start_excluded(self):
        assert not in_cw_interval(0.2, 0.2, 0.5)

    def test_end_included(self):
        assert in_cw_interval(0.5, 0.2, 0.5)

    def test_wrap(self):
        assert in_cw_interval(0.05, 0.9, 0.1)
        assert not in_cw_interval(0.5, 0.9, 0.1)

    def test_empty_interval(self):
        assert not in_cw_interval(0.3, 0.4, 0.4)


class TestRing:
    def test_requires_ids(self):
        with pytest.raises(ValueError):
            Ring([])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Ring([0.5, 1.0])
        with pytest.raises(ValueError):
            Ring([-0.1, 0.5])

    def test_dedupes(self):
        r = Ring([0.5, 0.5, 0.25])
        assert r.n == 2

    def test_sorted(self):
        r = Ring([0.9, 0.1, 0.5])
        assert list(r.ids) == [0.1, 0.5, 0.9]

    def test_successor_basic(self):
        r = Ring([0.1, 0.5, 0.9])
        assert r.successor(0.2) == 0.5
        assert r.successor(0.05) == 0.1

    def test_successor_wraps(self):
        r = Ring([0.1, 0.5, 0.9])
        assert r.successor(0.95) == 0.1

    def test_id_is_own_successor(self):
        r = Ring([0.1, 0.5, 0.9])
        assert r.successor(0.5) == 0.5

    def test_successor_many_matches_scalar(self, small_ring):
        pts = np.linspace(0, 0.999, 37)
        many = small_ring.successor_index_many(pts)
        for p, idx in zip(pts, many):
            assert idx == small_ring.successor_index(float(p))

    def test_predecessor_index(self):
        r = Ring([0.1, 0.5, 0.9])
        assert r.predecessor_index(0.2) == 0   # first ID ccw of 0.2 is 0.1
        assert r.predecessor_index(0.05) == 2  # wraps to 0.9

    def test_pred_succ_of_index_roundtrip(self, small_ring):
        for i in (0, 5, small_ring.n - 1):
            assert small_ring.predecessor_index_of(small_ring.successor_index_of(i)) == i

    def test_arc_lengths_sum_to_one(self, small_ring):
        assert small_ring.arc_lengths().sum() == pytest.approx(1.0)

    def test_arc_lengths_positive(self, small_ring):
        assert (small_ring.arc_lengths() > 0).all()

    def test_responsible_fraction_all(self, small_ring):
        mask = np.ones(small_ring.n, dtype=bool)
        assert small_ring.responsible_fraction(mask) == pytest.approx(1.0)

    def test_index_of_and_contains(self):
        r = Ring([0.1, 0.5, 0.9])
        assert r.index_of(0.5) == 1
        assert r.contains(0.9)
        assert not r.contains(0.2)
        with pytest.raises(KeyError):
            r.index_of(0.2)

    def test_len(self, small_ring):
        assert len(small_ring) == small_ring.n

    def test_ids_are_read_only(self, small_ring):
        with pytest.raises(ValueError):
            small_ring.ids[0] = 0.0


class TestSuccessorBulk:
    """The LUT-accelerated bulk path must equal the binary search exactly."""

    def test_small_batch_delegates(self, small_ring):
        pts = np.random.default_rng(0).random(64)
        assert np.array_equal(
            small_ring.successor_index_bulk(pts),
            small_ring.successor_index_many(pts),
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_large_batch_matches_binary_search(self, seed):
        rng = np.random.default_rng(seed)
        ring = Ring(rng.random(2048))
        pts = rng.random(50_000)
        assert np.array_equal(
            ring.successor_index_bulk(pts), ring.successor_index_many(pts)
        )

    def test_adversarially_clustered_ring(self):
        # all IDs inside one LUT bucket: forces the advance loop into its
        # binary-search fallback, which must stay exact
        rng = np.random.default_rng(7)
        ids = 0.5 + 1e-7 * np.sort(rng.random(512))
        ring = Ring(ids)
        pts = np.concatenate([
            rng.random(30_000),
            0.5 + 1e-7 * rng.random(30_000),  # hammer the crowded bucket
        ])
        assert np.array_equal(
            ring.successor_index_bulk(pts), ring.successor_index_many(pts)
        )

    def test_boundary_points(self):
        ring = Ring(np.random.default_rng(3).random(1024))
        eps = float(np.nextafter(1.0, 0.0))
        pts = np.concatenate([
            np.zeros(2048),                      # 0.0 -> first ID
            np.full(2048, eps),                  # just under 1 -> wraps to 0
            np.repeat(ring.ids[:512], 4),        # exact IDs are own successors
        ])
        assert np.array_equal(
            ring.successor_index_bulk(pts), ring.successor_index_many(pts)
        )

    def test_wraps_past_last_id(self):
        ring = Ring(np.linspace(0.1, 0.6, 2048))
        pts = np.full(10_000, 0.9)  # clockwise past every ID: successor is 0
        assert (ring.successor_index_bulk(pts) == 0).all()


class TestLnEstimation:
    def test_estimate_ln_n_order_of_magnitude(self):
        for n in (128, 1024, 8192):
            ids = np.random.default_rng(n).random(n)
            est = estimate_ln_n(ids)
            true = np.log(n)
            # constant-factor estimate (paper footnote 15)
            assert 0.5 * true <= est <= 2.5 * true

    def test_estimate_robust_to_omission(self):
        # adversary omitting IDs only widens gaps: estimate shifts O(1)
        rng = np.random.default_rng(3)
        ids = rng.random(4096)
        full = estimate_ln_n(ids)
        kept = ids[(ids < 0.25) | (ids > 0.5)]  # omit a quarter of the ring
        part = estimate_ln_n(kept)
        assert abs(full - part) < 2.0

    def test_estimate_ln_ln_n(self):
        ids = np.random.default_rng(9).random(4096)
        est = estimate_ln_ln_n(ids)
        assert 0.5 * np.log(np.log(4096)) <= est <= 2.5 * np.log(np.log(4096))
