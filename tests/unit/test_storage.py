"""Unit tests: redundant group storage (repro.core.storage)."""

import numpy as np
import pytest

from repro.adversary import UniformAdversary
from repro.core.params import SystemParams
from repro.core.static_case import constructive_static_graph
from repro.core.storage import GroupStore
from repro.inputgraph import make_input_graph


@pytest.fixture
def setup():
    rng = np.random.default_rng(13)
    params = SystemParams(n=256, beta=0.05, seed=0)
    ids, bad = UniformAdversary(params.beta).population(params.n, rng)
    H = make_input_graph("chord", ids)
    gg, groups, _ = constructive_static_graph(H, params, bad, rng=rng)
    departed = np.zeros(H.n, dtype=bool)
    store = GroupStore(gg, bad, departed=departed)
    return store, bad, departed, rng


class TestPutGet:
    def test_roundtrip(self, setup):
        store, bad, departed, rng = setup
        assert store.put(0.42, "payload", 3, rng)
        ok, value, reason = store.get(0.42, 7, rng)
        assert ok and value == "payload" and reason == "ok"

    def test_missing_key(self, setup):
        store, *_, rng = setup
        ok, value, reason = store.get(0.99, 0, rng)
        assert not ok and reason == "missing"

    def test_len_counts_objects(self, setup):
        store, bad, departed, rng = setup
        for k in (0.1, 0.2, 0.3):
            store.put(k, k, 0, rng)
        assert len(store) == 3

    def test_replicas_at_responsible_group(self, setup):
        store, bad, departed, rng = setup
        store.put(0.5, "x", 0, rng)
        rec = store._objects[0.5]
        g = store.gg.H.ring.successor_index(0.5)
        assert rec.group == g
        assert np.array_equal(rec.holders, store.gg.groups.members_of(g))

    def test_messages_charged(self, setup):
        store, bad, departed, rng = setup
        store.put(0.5, "x", 0, rng)
        assert store.ledger.messages.get("storage", 0) > 0
        assert store.ledger.messages.get("routing", 0) > 0

    def test_requires_explicit_members(self, setup):
        from repro.core.group_graph import GroupGraph

        store, bad, departed, rng = setup
        bare = GroupGraph(store.gg.H, store.gg.params,
                          red=np.zeros(store.gg.n, dtype=bool))
        with pytest.raises(ValueError):
            GroupStore(bare, bad)


class TestFailureModes:
    def test_departed_holders_dont_serve(self, setup):
        store, bad, departed, rng = setup
        store.put(0.5, "x", 0, rng)
        rec = store._objects[0.5]
        departed[rec.holders] = True
        ok, _, reason = store.get(0.5, 0, rng)
        assert not ok and reason == "replicas"

    def test_bad_majority_replicas_fail(self, setup):
        store, bad, departed, rng = setup
        store.put(0.5, "x", 0, rng)
        rec = store._objects[0.5]
        # depart all good holders: remaining copies are adversarial
        departed[rec.holders[~bad[rec.holders]]] = True
        if bad[rec.holders].any():
            ok, _, reason = store.get(0.5, 0, rng)
            assert not ok and reason == "replicas"

    def test_red_route_blocks_get(self, setup):
        store, bad, departed, rng = setup
        store.put(0.5, "x", 0, rng)
        store.gg.red.setflags(write=True)
        store.gg.red[:] = True
        ok, _, reason = store.get(0.5, 0, rng)
        assert not ok and reason == "routing"


class TestRepairAndMigration:
    def test_repair_restores_replication(self, setup):
        store, bad, departed, rng = setup
        store.put(0.5, "x", 0, rng)
        rec = store._objects[0.5]
        survivors = rec.holders[~bad[rec.holders]]
        departed[survivors[: survivors.size // 2]] = True
        assert store.repair() >= 1
        assert not departed[store._objects[0.5].holders].any()

    def test_repair_skips_unrecoverable(self, setup):
        store, bad, departed, rng = setup
        store.put(0.5, "x", 0, rng)
        departed[store._objects[0.5].holders] = True
        assert store.repair() == 0

    def test_migrate_moves_recoverable_objects(self, setup):
        store, bad, departed, rng = setup
        for k in (0.1, 0.5, 0.9):
            store.put(k, k, 0, rng)
        other = GroupStore(store.gg, bad, departed=np.zeros_like(departed))
        assert store.migrate_to(other, rng) == 3
        assert len(other) == 3
        ok, v, _ = other.get(0.5, 0, rng)
        assert ok and v == 0.5

    def test_migrate_drops_unrecoverable(self, setup):
        store, bad, departed, rng = setup
        store.put(0.5, "x", 0, rng)
        departed[store._objects[0.5].holders] = True
        other = GroupStore(store.gg, bad, departed=np.zeros_like(departed))
        assert store.migrate_to(other, rng) == 0

    def test_survey_counts(self, setup):
        store, bad, departed, rng = setup
        for k in np.linspace(0.05, 0.95, 10):
            store.put(float(k), k, 0, rng)
        stats = store.survey(rng)
        assert stats.attempted == 10
        assert stats.succeeded + stats.failed_routing + stats.failed_replicas == 10
        assert stats.availability == stats.succeeded / 10
