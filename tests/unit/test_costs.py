"""Unit tests: cost accounting (repro.core.costs)."""

import pytest

from repro.core.costs import CostLedger, corollary1_predictions


class TestCostLedger:
    def test_add_messages(self):
        led = CostLedger()
        led.add_messages("routing", 10)
        led.add_messages("routing", 5)
        assert led.messages["routing"] == 15

    def test_group_comm(self):
        led = CostLedger()
        led.group_comm(group_size=5)
        assert led.messages["group_comm"] == 20  # 5*4

    def test_group_comm_rounds(self):
        led = CostLedger()
        led.group_comm(group_size=4, rounds=3)
        assert led.messages["group_comm"] == 36

    def test_inter_group_hop(self):
        led = CostLedger()
        led.inter_group_hop(3, 7)
        assert led.messages["routing"] == 21

    def test_total_messages(self):
        led = CostLedger()
        led.add_messages("a", 1)
        led.add_messages("b", 2)
        assert led.total_messages() == 3

    def test_state(self):
        led = CostLedger()
        led.add_state("links", 10)
        led.add_state("members", 4)
        assert led.total_state() == 14

    def test_count_op(self):
        led = CostLedger()
        led.count_op("searches", 5)
        led.count_op("searches")
        assert led.operations["searches"] == 6

    def test_merge(self):
        a, b = CostLedger(), CostLedger()
        a.add_messages("x", 1)
        b.add_messages("x", 2)
        b.add_state("s", 3)
        b.count_op("o", 4)
        a.merge(b)
        assert a.messages["x"] == 3
        assert a.state_entries["s"] == 3
        assert a.operations["o"] == 4

    def test_snapshot(self):
        led = CostLedger()
        led.add_messages("x", 1)
        snap = led.snapshot()
        assert snap["messages"] == {"x": 1}


class TestCorollary1:
    def test_group_comm_quadratic(self):
        p = corollary1_predictions(n=1024, group_size=6, route_length=10)
        assert p.group_comm_messages == 30

    def test_routing_cost(self):
        p = corollary1_predictions(n=1024, group_size=6, route_length=10)
        assert p.routing_messages_per_search == pytest.approx(360)

    def test_tiny_beats_classic(self):
        tiny = corollary1_predictions(n=2**16, group_size=3, route_length=16)
        classic = corollary1_predictions(n=2**16, group_size=11, route_length=16)
        assert tiny.routing_messages_per_search < classic.routing_messages_per_search
        assert tiny.state_per_id < classic.state_per_id

    def test_rows_render(self):
        p = corollary1_predictions(n=1024, group_size=6, route_length=10)
        rows = p.rows()
        assert len(rows) == 4
        assert all(len(r) == 2 for r in rows)
