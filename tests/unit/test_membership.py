"""Unit tests: §III-A new-graph construction (repro.core.membership)."""

import numpy as np
import pytest

from repro.core.membership import (
    EpochPair,
    GraphSide,
    build_new_graph,
    measure_qf,
)
from repro.core.params import SystemParams
from repro.idspace.ring import Ring
from repro.inputgraph import make_input_graph


def make_pair(n=128, beta=0.05, pf=0.0, seed=0):
    rng = np.random.default_rng(seed)
    ids = rng.random(n)
    ring = Ring(ids)
    bad = rng.random(ring.n) < beta
    H = make_input_graph("chord", ring)
    return EpochPair(
        ring=ring,
        H=H,
        bad_mask=bad,
        red1=rng.random(ring.n) < pf,
        red2=rng.random(ring.n) < pf,
    ), rng


@pytest.fixture
def params():
    return SystemParams(n=128, beta=0.05, seed=0)


class TestEpochPair:
    def test_red_selector(self):
        pair, _ = make_pair(pf=0.1)
        assert pair.red(1) is pair.red1
        assert pair.red(2) is pair.red2
        with pytest.raises(ValueError):
            pair.red(3)

    def test_fraction_red(self):
        pair, _ = make_pair(pf=0.0)
        assert pair.fraction_red() == 0.0

    def test_departed_default(self):
        pair, _ = make_pair()
        assert not pair.ring_departed.any()


class TestBuildCleanOlds:
    """With all-blue old graphs there are no captures or rejections."""

    def test_no_captures(self, params):
        pair, rng = make_pair(pf=0.0)
        new_ring = Ring(rng.random(128))
        new_H = make_input_graph("chord", new_ring)
        rep = build_new_graph(pair, new_ring, new_H, 1, params, rng)
        assert rep.slot_capture_rate == 0.0
        assert rep.rejection_rate == 0.0
        assert rep.fraction_confused == 0.0

    def test_bad_members_only_from_population(self, params):
        pair, rng = make_pair(pf=0.0, beta=0.05)
        new_ring = Ring(rng.random(128))
        new_H = make_input_graph("chord", new_ring)
        rep = build_new_graph(pair, new_ring, new_H, 1, params, rng)
        # bad candidate rate tracks the (arc-weighted) bad population share
        assert rep.bad_candidate_rate < 0.25

    def test_sizes_near_solicit(self, params):
        pair, rng = make_pair(pf=0.0)
        new_ring = Ring(rng.random(128))
        new_H = make_input_graph("chord", new_ring)
        rep = build_new_graph(pair, new_ring, new_H, 1, params, rng)
        assert rep.mean_group_size > 0.6 * params.group_solicit_size

    def test_membership_counts_sum(self, params):
        pair, rng = make_pair(pf=0.0, beta=0.0)
        new_ring = Ring(rng.random(128))
        new_H = make_input_graph("chord", new_ring)
        rep = build_new_graph(pair, new_ring, new_H, 1, params, rng)
        # every accepted good membership is counted exactly once
        side = rep.side
        assert rep.membership_counts.sum() == side.good_members.size


class TestBuildRedOlds:
    def test_all_red_olds_capture_everything(self, params):
        pair, rng = make_pair(pf=1.0)
        pair.red1[:] = True
        pair.red2[:] = True
        new_ring = Ring(rng.random(128))
        new_H = make_input_graph("chord", new_ring)
        rep = build_new_graph(pair, new_ring, new_H, 1, params, rng)
        # near-total capture: the only "successful" searches are the
        # degenerate source==responsible ones, which never checked a group
        assert rep.slot_capture_rate > 0.95
        assert rep.fraction_red == 1.0

    def test_dual_beats_single_capture(self, params):
        outs = {}
        for two in (True, False):
            pair, rng = make_pair(pf=0.10, seed=4)
            new_ring = Ring(rng.random(128))
            new_H = make_input_graph("chord", new_ring)
            rep = build_new_graph(
                pair, new_ring, new_H, 1, params, rng, two_graphs=two
            )
            outs[two] = rep.slot_capture_rate
        assert outs[True] < outs[False]

    def test_one_red_graph_harmless_with_dual(self, params):
        """If only old graph 2 is fully red, dual searches still succeed via
        graph 1: captures require BOTH to fail."""
        pair, rng = make_pair(pf=0.0)
        pair.red2[:] = True
        new_ring = Ring(rng.random(128))
        new_H = make_input_graph("chord", new_ring)
        rep = build_new_graph(pair, new_ring, new_H, 1, params, rng)
        assert rep.slot_capture_rate == 0.0


class TestGraphSide:
    def _side(self, n_groups=2, pool=8):
        # group 0: members 0,1,2 good; 1 bad. group 1: members 3,4; 0 bad.
        departed = np.zeros(pool, dtype=bool)
        return GraphSide(
            good_indptr=np.array([0, 3, 5]),
            good_members=np.array([0, 1, 2, 3, 4]),
            n_bad=np.array([1, 0]),
            confused=np.zeros(2, dtype=bool),
            pool_departed=departed,
        )

    def test_good_remaining(self):
        side = self._side()
        assert list(side.good_remaining()) == [3, 2]
        side.pool_departed[1] = True
        assert list(side.good_remaining()) == [2, 2]

    def test_classify_flags_decayed_majority(self, params):
        side = self._side()
        red0 = side.classify(params)
        assert not red0[0]
        # depart good members until bad fraction crosses 1/3: 1 bad of 2 total
        side.pool_departed[[0, 1]] = True
        red1 = side.classify(params)
        assert red1[0]

    def test_classify_flags_confused(self, params):
        side = self._side()
        side.confused[1] = True
        assert side.classify(params)[1]

    def test_classify_flags_too_small(self, params):
        side = self._side()
        side.pool_departed[[3, 4]] = True  # group 1 empties
        assert side.classify(params)[1]


class TestMeasureQf:
    def test_blue_pair_qf_zero(self, params):
        pair, rng = make_pair(pf=0.0)
        q1, q2 = measure_qf(pair, params, 500, rng)
        assert q1 == 0.0 and q2 == 0.0

    def test_qf_increases_with_red(self, params):
        pair, rng = make_pair(pf=0.15, seed=6)
        q1, q2 = measure_qf(pair, params, 1000, rng)
        assert q1 > 0.05 and q2 > 0.05
