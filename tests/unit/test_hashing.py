"""Unit tests: random-oracle hashing (repro.idspace.hashing)."""

import numpy as np
import pytest

from repro.idspace.hashing import OracleSuite, RandomOracle


class TestRandomOracle:
    def test_range(self):
        h = RandomOracle("t", 0)
        for x in (0, 1, 0.5, "abc", b"xyz", True):
            v = h(x)
            assert 0.0 <= v < 1.0

    def test_deterministic(self):
        h1 = RandomOracle("t", 7)
        h2 = RandomOracle("t", 7)
        assert h1(0.25, 3) == h2(0.25, 3)

    def test_name_separates_oracles(self):
        assert RandomOracle("a", 0)(1) != RandomOracle("b", 0)(1)

    def test_seed_separates_oracles(self):
        assert RandomOracle("a", 0)(1) != RandomOracle("a", 1)(1)

    def test_type_tagging_prevents_collisions(self):
        h = RandomOracle("t", 0)
        assert h(1) != h(1.0)
        assert h("1") != h(1)
        assert h(b"1") != h("1")

    def test_multi_part_inputs(self):
        h = RandomOracle("t", 0)
        assert h(1, 2) != h(2, 1)
        assert h(1, 2) != h(12)

    def test_bool_distinct_from_int(self):
        h = RandomOracle("t", 0)
        assert h(True) != h(1)

    def test_unhashable_raises(self):
        h = RandomOracle("t", 0)
        with pytest.raises(TypeError):
            h([1, 2])

    def test_u64(self):
        h = RandomOracle("t", 0)
        v = h.u64("x")
        assert isinstance(v, int) and 0 <= v < 2**64

    def test_many_matches_calls(self):
        h = RandomOracle("t", 0)
        arr = h.many(0.5, 5)
        for i, v in enumerate(arr, start=1):
            assert v == h(0.5, i)

    def test_many_start_offset(self):
        h = RandomOracle("t", 0)
        assert h.many(0.5, 2, start=3)[0] == h(0.5, 3)

    def test_outputs_roughly_uniform(self):
        h = RandomOracle("u", 0)
        vals = np.array([h(i) for i in range(2000)])
        assert abs(vals.mean() - 0.5) < 0.03
        assert abs((vals < 0.25).mean() - 0.25) < 0.04

    def test_uniform_stream_deterministic(self):
        h = RandomOracle("t", 0)
        a = h.uniform_stream("k").random(8)
        b = h.uniform_stream("k").random(8)
        assert np.array_equal(a, b)

    def test_uniform_stream_keys_independent(self):
        h = RandomOracle("t", 0)
        a = h.uniform_stream("k1").random(8)
        b = h.uniform_stream("k2").random(8)
        assert not np.array_equal(a, b)


class TestOracleSuite:
    def test_all_oracles_distinct(self):
        s = OracleSuite(seed=3)
        vals = {name: getattr(s, name)(0.5) for name in ("h1", "h2", "f", "g", "h")}
        assert len(set(vals.values())) == 5

    def test_membership_oracle_selector(self):
        s = OracleSuite(seed=3)
        assert s.membership_oracle(1) is s.h1
        assert s.membership_oracle(2) is s.h2
        with pytest.raises(ValueError):
            s.membership_oracle(3)

    def test_suite_reproducible(self):
        assert OracleSuite(5).h1(1.0) == OracleSuite(5).h1(1.0)
