"""Unit tests: the telemetry summariser and its CLI surface.

The acceptance bar from the telemetry refactor: ``repro telemetry
report`` must reproduce the perf ledger's rows from ``bench.row`` events
alone, and the summary views (dispatch funnel, sweep trends, trial
totals) must be derivable from any mixed stream.
"""

import json

import pytest

from repro.analysis.benchio import bench_row, record_bench_rows
from repro.analysis.telemetry_report import (
    bench_rows_from_events,
    check_bench,
    render_report,
    summarize_events,
)
from repro.cli import main
from repro.telemetry import TelemetryBuffer, TelemetryWriter


def _mixed_buffer() -> TelemetryBuffer:
    ticks = iter(float(i) for i in range(100))
    buf = TelemetryBuffer(clock=ticks.__next__)
    buf.emit("dispatch.serve", enqueued=2, units=2, fingerprint="f" * 20)
    buf.emit("dispatch.lease", index=0, worker="wA")
    buf.emit("dispatch.execute", index=0, worker="wA", wall_s=0.25)
    buf.emit("dispatch.complete", index=0, worker="wA", verdict="accepted",
             lease_latency_s=0.3)
    buf.emit("dispatch.lease", index=1, worker="wB")
    buf.emit("dispatch.complete", index=1, worker="wB", verdict="corrupt")
    buf.emit("dispatch.requeue", index=1, reason="corrupt")
    buf.emit("dispatch.quorum", index=0, outcome="vote")
    buf.emit("dispatch.quorum", index=0, outcome="settled")
    buf.emit("dispatch.quorum", index=1, outcome="tie")
    buf.emit("dispatch.poison", index=1, attempts=3)
    buf.emit("dispatch.suspect", worker="wLiar", suspicion=1)
    buf.emit("dispatch.suspect", worker="wLiar", suspicion=2)
    buf.emit("sweep.cell", experiment="E2", index=0, kernel="vectorized",
             backend="serial", wall_s=0.01)
    buf.emit("sweep.cell", experiment="E2", index=1, kernel="vectorized",
             backend="serial", wall_s=0.03)
    buf.emit("sweep.run", experiment="E2", cells=2, kernel="vectorized",
             backend="serial", wall_s=0.05)
    buf.emit("trials.run", backend="serial", trials=1000, wall_s=0.5)
    buf.emit("trials.run", backend="vectorized", trials=1000, wall_s=0.1)
    buf.emit("pool.spawn", workers=4, mp_method="spawn")
    buf.emit("pool.reuse", workers=4, requested=2)
    buf.emit("pool.reuse", workers=4, requested=4)
    buf.emit("pool.broken", workers=4, swept_segments=2)
    buf.emit("shm.bytes", shm_bytes=600_000, pickle_bytes=300_000, segments=3)
    buf.emit("shm.bytes", shm_bytes=300_000, pickle_bytes=0, segments=1)
    buf.emit("sweep.degrade", experiment="E2", reason="unpicklable-cell",
             detail="PicklingError")
    buf.emit("bench.calibration", wall_s=0.02)
    buf.emit("bench.row", **bench_row("E2", 1024, "serial", 2.0, 1, 1000))
    buf.emit("bench.row", **bench_row("E2", 1024, "vectorized", 0.2, 1, 1000))
    return buf


class TestSummary:
    def test_dispatch_funnel(self):
        summary = summarize_events(_mixed_buffer().events)
        dispatch = summary["dispatch"]
        assert dispatch["served_units"] == 2
        assert dispatch["leases"] == 2
        assert dispatch["verdicts"] == {"accepted": 1, "corrupt": 1}
        assert dispatch["requeues"] == {"corrupt": 1}
        assert dispatch["lease_latency_s"]["count"] == 1
        assert dispatch["lease_latency_s"]["p50"] == 0.3
        assert dispatch["execute_wall_s"]["max"] == 0.25

    def test_sweep_and_trials_sections(self):
        summary = summarize_events(_mixed_buffer().events)
        (sweep,) = summary["sweeps"]
        assert sweep["experiment"] == "E2" and sweep["runs"] == 1
        assert sweep["cell_wall_s"]["count"] == 2
        assert sweep["cell_wall_s"]["p50"] in (0.01, 0.03)
        assert summary["trials"]["serial"]["trials"] == 1000
        assert summary["trials"]["vectorized"]["wall_s"] == 0.1

    def test_bench_section_with_speedups(self):
        summary = summarize_events(_mixed_buffer().events)
        bench = summary["bench"]
        assert len(bench["rows"]) == 2
        (speedup,) = bench["speedups"]
        assert speedup["speedup"] == 10.0
        assert bench["calibration_wall_s"] == 0.02

    def test_pool_and_shm_section(self):
        summary = summarize_events(_mixed_buffer().events)
        pool = summary["pool"]
        assert pool["spawns"] == 1
        assert pool["reuses"] == 2
        assert pool["broken"] == 1
        assert pool["swept_segments"] == 2
        shm = pool["shm"]
        assert shm["transfers"] == 2
        assert shm["segments"] == 4
        assert shm["shm_bytes"] == 900_000
        assert shm["pickle_bytes"] == 300_000
        assert shm["shm_fraction"] == 0.75
        assert pool["degrades"] == {"E2:unpicklable-cell": 1}

    def test_no_pool_events_no_section(self):
        buf = TelemetryBuffer(clock=lambda: 1.0)
        buf.emit("trials.run", backend="serial", trials=10, wall_s=0.1)
        assert "pool" not in summarize_events(buf.events)

    def test_quorum_funnel(self):
        summary = summarize_events(_mixed_buffer().events)
        quorum = summary["dispatch"]["quorum"]
        assert quorum["outcomes"] == {"vote": 1, "settled": 1, "tie": 1}
        assert quorum["poisoned"] == 1
        # a worker's suspicion only grows: the last emission is final
        assert quorum["suspicion"] == {"wLiar": 2}

    def test_no_quorum_events_no_quorum_block(self):
        buf = TelemetryBuffer(clock=lambda: 1.0)
        buf.emit("dispatch.serve", enqueued=1, units=1, fingerprint="f" * 20)
        assert "quorum" not in summarize_events(buf.events)["dispatch"]

    def test_unknown_types_counted_not_fatal(self):
        buf = TelemetryBuffer(clock=lambda: 1.0)
        buf.emit("future.metric", whatever=1)
        summary = summarize_events(buf.events)
        assert summary["types"] == {"future.metric": 1}
        assert "dispatch" not in summary

    def test_render_is_text_with_all_sections(self):
        text = render_report(summarize_events(_mixed_buffer().events))
        for needle in ("dispatch funnel", "sweep cells", "trial loops",
                       "bench ledger", "host calibration", "speedup",
                       "worker pool / shm transport", "off-pipe",
                       "degrade E2:unpicklable-cell", "quorum:",
                       "suspect wLiar", "suspicion=2", "poisoned"):
            assert needle in text


def _serve_events() -> list[dict]:
    """A fixed synthetic serving stream with *out-of-order* timestamps.

    20 ``serve.request`` events with latencies 1..20 ms; timestamps cover
    [100, 104]s but arrive scrambled (``(i * 7) % 20`` is a permutation),
    so the QPS golden below only holds if the summariser uses min/max —
    not first/last — to span the stream.
    """
    events = []
    for i in range(1, 21):
        events.append({
            "v": 1,
            "ts": 100.0 + ((i * 7) % 20) * (4.0 / 19),
            "type": "serve.request",
            "latency_s": i / 1000.0,
            "epoch": 0 if i <= 12 else 1,
            "outcome": "corrupted" if i % 5 == 0 else "delivered",
        })
    events.append({
        "v": 1, "ts": 102.0, "type": "serve.publish", "epoch": 1,
        "wall_s": 0.05,
    })
    events.append({
        "v": 1, "ts": 99.0, "type": "churn.clipped", "model": "uniform",
        "rate": 0.9, "cap": 0.1667,
    })
    return events


class TestServeSection:
    """Golden values for the serving-layer summary (ISSUE 10 satellite)."""

    def test_golden_qps_and_percentiles(self):
        serve = summarize_events(_serve_events())["serve"]
        assert serve["requests"] == 20
        # span = 104.0 - 100.0 regardless of emission order
        assert serve["qps"] == 5.0
        lat = serve["latency_s"]
        assert (lat["p50"], lat["p95"], lat["p99"], lat["max"]) == (
            0.011, 0.019, 0.02, 0.02
        )
        assert lat["total"] == 0.21
        assert serve["outcomes"] == {"delivered": 16, "corrupted": 4}

    def test_golden_per_epoch_breakdown(self):
        serve = summarize_events(_serve_events())["serve"]
        assert sorted(serve["epochs"]) == [0, 1]
        epoch0, epoch1 = serve["epochs"][0], serve["epochs"][1]
        assert (epoch0["count"], epoch0["p50"], epoch0["p99"]) == (12, 0.007, 0.012)
        assert (epoch1["count"], epoch1["p50"], epoch1["p99"]) == (8, 0.017, 0.02)

    def test_publishes_and_clips(self):
        serve = summarize_events(_serve_events())["serve"]
        assert serve["publishes"]["count"] == 1
        assert serve["publishes"]["epochs"] == [1]
        assert serve["publishes"]["wall_s"]["p50"] == 0.05
        assert serve["churn_clips"] == [
            {"model": "uniform", "rate": 0.9, "cap": 0.1667}
        ]

    def test_single_request_has_no_qps(self):
        summary = summarize_events([_serve_events()[0]])
        assert summary["serve"]["qps"] is None
        assert summary["serve"]["requests"] == 1

    def test_goldens_survive_file_roundtrip_with_torn_tail(self, tmp_path):
        from repro.telemetry import read_events

        path = tmp_path / "serve.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            for event in _serve_events():
                fh.write(json.dumps(event) + "\n")
            # a crashed writer's torn tail: no newline, truncated JSON
            fh.write('{"v": 1, "ts": 105.0, "type": "serve.request", "laten')
        events = read_events(path)
        assert len(events) == 22  # the torn line is dropped, not fatal
        serve = summarize_events(events)["serve"]
        assert serve["qps"] == 5.0
        assert serve["latency_s"]["p99"] == 0.02

    def test_render_serving_section(self):
        text = render_report(summarize_events(_serve_events()))
        for needle in ("serving layer", "5.0 QPS", "p50 11.00ms",
                       "p99 20.00ms", "epoch 0", "epoch 1",
                       "publishes         1", "churn clipped"):
            assert needle in text


class TestBenchReconstruction:
    def test_rows_last_emission_wins_and_sorted(self):
        buf = TelemetryBuffer(clock=lambda: 1.0)
        buf.emit("bench.row", **bench_row("E3", 8192, "serial", 5.0, 12, 1))
        buf.emit("bench.row", **bench_row("E2", 1024, "serial", 2.0, 1, 1))
        buf.emit("bench.row", **bench_row("E2", 1024, "serial", 1.5, 1, 1))
        rows = bench_rows_from_events(buf.events)
        assert [(r["experiment"], r["wall_s"]) for r in rows] == [
            ("E2", 1.5), ("E3", 5.0),
        ]

    def test_malformed_row_events_skipped(self):
        events = [
            {"v": 1, "ts": 1.0, "type": "bench.row", "experiment": "E2"},
            {"v": 1, "ts": 1.0, "type": "bench.row",
             **bench_row("E2", 1, "serial", 1.0, 1, 1)},
        ]
        assert len(bench_rows_from_events(events)) == 1

    def test_check_bench_matches_written_file(self, tmp_path):
        buf = _mixed_buffer()
        path = tmp_path / "BENCH.json"
        record_bench_rows(path, bench_rows_from_events(buf.events))
        assert check_bench(buf.events, path) == []

    def test_check_bench_flags_divergence(self, tmp_path):
        buf = _mixed_buffer()
        path = tmp_path / "BENCH.json"
        rows = bench_rows_from_events(buf.events)
        rows[0] = dict(rows[0], wall_s=999.0)  # the file lies
        record_bench_rows(path, rows)
        problems = check_bench(buf.events, path)
        assert problems and "differs" in problems[0]

    def test_check_bench_flags_missing_row(self, tmp_path):
        buf = _mixed_buffer()
        path = tmp_path / "BENCH.json"
        record_bench_rows(path, bench_rows_from_events(buf.events)[:1])
        assert any("not in" in p for p in check_bench(buf.events, path))

    def test_check_bench_no_events(self, tmp_path):
        path = tmp_path / "BENCH.json"
        record_bench_rows(path, [])
        assert check_bench([], path) != []


class TestCli:
    def _events_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TelemetryWriter(path, clock=lambda: 1.0) as w:
            for event in _mixed_buffer().events:
                payload = {
                    k: v for k, v in event.items()
                    if k not in ("v", "ts", "type")
                }
                w.emit(event["type"], **payload)
        return path

    def test_report_text(self, tmp_path, capsys):
        path = self._events_file(tmp_path)
        assert main(["telemetry", "report", "--events", str(path)]) == 0
        out = capsys.readouterr().out
        assert "dispatch funnel" in out and "bench ledger" in out

    def test_report_json(self, tmp_path, capsys):
        path = self._events_file(tmp_path)
        assert main(["telemetry", "report", "--events", str(path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["dispatch"]["served_units"] == 2

    def test_report_write_then_check_bench(self, tmp_path, capsys):
        path = self._events_file(tmp_path)
        bench = tmp_path / "BENCH.json"
        assert main([
            "telemetry", "report", "--events", str(path),
            "--write-bench", str(bench),
        ]) == 0
        assert main([
            "telemetry", "report", "--events", str(path),
            "--check-bench", str(bench),
        ]) == 0
        assert "matches" in capsys.readouterr().out

    def test_report_check_bench_failure_exit_code(self, tmp_path, capsys):
        path = self._events_file(tmp_path)
        bench = tmp_path / "BENCH.json"
        record_bench_rows(bench, [bench_row("E2", 1024, "serial", 123.0, 1, 1000)])
        assert main([
            "telemetry", "report", "--events", str(path),
            "--check-bench", str(bench),
        ]) == 1
        assert "check-bench" in capsys.readouterr().err

    def test_report_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["telemetry", "report", "--events", str(empty)]) == 1
        assert "no events" in capsys.readouterr().err
