"""Unit tests: the structured telemetry layer (repro.telemetry).

The layer's load-bearing guarantees, each tested directly: schema-checked
writes that fail the emitter (never the stream), single-write O_APPEND
lines that survive concurrent OS-process writers, monotonic per-writer
timestamps under a misbehaving clock, permissive reads (unknown types,
version skew, torn tail lines), and the one-shot converter that keeps
pre-telemetry spool logs readable.
"""

import json
import os
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.telemetry import (
    SCHEMA_VERSION,
    TelemetryBuffer,
    TelemetryError,
    TelemetryWriter,
    check_event,
    convert_legacy_line,
    emit_default,
    make_event,
    read_events,
    reset_default_writer,
    set_default_writer,
    telemetry_to,
)


class TestRecords:
    def test_make_event_envelope(self):
        event = make_event("dispatch.lease", ts=1.5, index=3, worker="w1")
        assert event["v"] == SCHEMA_VERSION
        assert event["ts"] == 1.5
        assert event["type"] == "dispatch.lease"
        assert event["index"] == 3 and event["worker"] == "w1"

    def test_payload_may_not_shadow_envelope(self):
        with pytest.raises(TelemetryError, match="shadow"):
            make_event("dispatch.lease", ts=0.0, **{"v": 2})

    def test_known_type_missing_field_is_a_problem(self):
        event = make_event("dispatch.lease", ts=0.0, index=1)  # no worker
        assert any("worker" in p for p in check_event(event))

    def test_bool_rejected_for_numeric_fields(self):
        event = make_event(
            "dispatch.execute", ts=0.0, index=1, worker="w", wall_s=True
        )
        assert any("wall_s" in p for p in check_event(event))

    def test_unknown_type_and_extra_fields_tolerated(self):
        assert check_event(make_event("future.metric", ts=0.0, anything=1)) == []
        event = make_event(
            "dispatch.lease", ts=0.0, index=1, worker="w", annotation="extra"
        )
        assert check_event(event) == []

    def test_non_dict_rejected(self):
        assert check_event([1, 2]) != []
        assert check_event({"ts": "late", "v": 1, "type": "x"}) != []


class TestWriter:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TelemetryWriter(path, clock=iter([1.0, 2.0]).__next__) as w:
            w.emit("dispatch.lease", index=0, worker="w1")
            w.emit("dispatch.complete", index=0, worker="w1", verdict="accepted")
        events = read_events(path, strict=True)
        assert [e["type"] for e in events] == [
            "dispatch.lease", "dispatch.complete",
        ]
        assert events[0]["ts"] == 1.0 and events[1]["ts"] == 2.0

    def test_malformed_emit_raises_and_writes_nothing(self, tmp_path):
        path = tmp_path / "events.jsonl"
        writer = TelemetryWriter(path)
        with pytest.raises(TelemetryError):
            writer.emit("dispatch.lease", index="not-an-int", worker="w")
        with pytest.raises(TelemetryError):
            writer.emit("dispatch.serve", enqueued=1, units=1,
                        fingerprint="f", payload=object())
        assert read_events(path) == []

    def test_monotonic_clamp_under_backwards_clock(self, tmp_path):
        ticks = iter([5.0, 3.0, 7.0])
        path = tmp_path / "events.jsonl"
        with TelemetryWriter(path, clock=ticks.__next__) as w:
            for _ in range(3):
                w.emit("dispatch.requeue", index=0)
        stamps = [e["ts"] for e in read_events(path)]
        assert stamps == [5.0, 5.0, 7.0]  # never backwards per writer

    def test_creates_parent_directory_lazily(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "events.jsonl"
        with TelemetryWriter(path) as w:
            assert not path.parent.exists()  # nothing until first emit
            w.emit("dispatch.requeue", index=1)
        assert read_events(path)[0]["index"] == 1

    def test_appends_do_not_truncate(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TelemetryWriter(path) as w:
            w.emit("dispatch.requeue", index=0)
        with TelemetryWriter(path) as w:
            w.emit("dispatch.requeue", index=1)
        assert [e["index"] for e in read_events(path)] == [0, 1]

    @settings(
        max_examples=25, deadline=None,
        # tmp_path is shared across examples by design: each example writes
        # to its own file inside it (unique name below)
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        fields=st.dictionaries(
            # payload keys must not shadow the envelope (v/ts/type)
            st.text(
                alphabet="abcdefghijklmnopqrstuwxyz_", min_size=1, max_size=8
            ).filter(lambda k: k not in ("v", "ts", "type")),
            st.one_of(
                st.integers(min_value=-(2**53), max_value=2**53),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=20),
                st.booleans(),
            ),
            max_size=5,
        )
    )
    def test_property_round_trip_arbitrary_payloads(self, tmp_path, fields):
        # unknown type => open registry: any JSON payload must round-trip
        # through disk byte-exactly
        path = tmp_path / f"prop-{os.getpid()}-{len(os.listdir(tmp_path))}.jsonl"
        with TelemetryWriter(path, clock=lambda: 1.0) as w:
            written = w.emit("test.anything", **fields)
        (read,) = read_events(path, strict=True)
        assert read == written


class TestBuffer:
    def test_buffer_same_surface(self):
        buf = TelemetryBuffer(clock=iter([1.0, 0.5, 2.0]).__next__)
        buf.emit("dispatch.requeue", index=0)
        buf.emit("dispatch.requeue", index=1)
        assert [e["ts"] for e in buf.events] == [1.0, 1.0]  # clamped
        assert len(buf.of_type("dispatch.requeue")) == 2
        with pytest.raises(TelemetryError):
            buf.emit("dispatch.lease", index="bad", worker="w")


class TestReader:
    def test_torn_tail_line_skipped_or_strict(self, tmp_path):
        path = tmp_path / "events.jsonl"
        good = json.dumps(make_event("dispatch.requeue", ts=1.0, index=0))
        path.write_text(good + "\n" + '{"v": 1, "ts": 2.0, "ty')
        assert len(read_events(path)) == 1
        with pytest.raises(TelemetryError, match="unparseable"):
            read_events(path, strict=True)

    def test_version_skew_tolerated(self, tmp_path):
        path = tmp_path / "events.jsonl"
        future = {"v": 99, "ts": 1.0, "type": "dispatch.lease",
                  "index": 0, "worker": "w", "new_field": {"nested": True}}
        path.write_text(json.dumps(future) + "\n")
        (event,) = read_events(path, strict=True)
        assert event == future  # v is data, not a gate

    def test_missing_file(self, tmp_path):
        assert read_events(tmp_path / "nope.jsonl") == []
        with pytest.raises(TelemetryError):
            read_events(tmp_path / "nope.jsonl", strict=True)

    def test_non_object_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("[1, 2, 3]\n")
        assert read_events(path) == []
        with pytest.raises(TelemetryError, match="not an object"):
            read_events(path, strict=True)


class TestLegacyConverter:
    """Pre-telemetry spools wrote free-text "<ts> <event> <detail>" lines;
    read_events must keep them readable without a migration step."""

    def test_lease_line(self):
        event = convert_legacy_line(
            "1723111845.201 lease unit-00042.json worker=w1"
        )
        assert event["v"] == 0 and event["legacy"] is True
        assert event["type"] == "dispatch.lease"
        assert event["index"] == 42 and event["worker"] == "w1"
        assert event["ts"] == pytest.approx(1723111845.201)

    def test_complete_line_with_verdict(self):
        event = convert_legacy_line(
            "12.5 complete result-00007.json worker=w2 accepted"
        )
        assert event["type"] == "dispatch.complete"
        assert event["index"] == 7 and event["verdict"] == "accepted"

    def test_unknown_token_becomes_legacy_type(self):
        event = convert_legacy_line("1.0 compact done=3")
        assert event["type"] == "legacy.compact" and event["done"] == 3

    def test_non_legacy_line_returns_none(self):
        assert convert_legacy_line("completely free text") is None
        assert convert_legacy_line("") is None

    def test_mixed_file_reads_end_to_end(self, tmp_path):
        path = tmp_path / "events.log"
        path.write_text(
            "100.0 serve enqueued=6\n"
            "101.0 lease unit-00000.json worker=wA\n"
        )
        # a new writer appends typed records to the same file
        with TelemetryWriter(path, clock=lambda: 102.0) as w:
            w.emit("dispatch.complete", index=0, worker="wA", verdict="accepted")
        events = read_events(path, strict=True)
        assert [e["type"] for e in events] == [
            "dispatch.serve", "dispatch.lease", "dispatch.complete",
        ]
        assert [e["v"] for e in events] == [0, 0, SCHEMA_VERSION]


_CONCURRENT_WRITER = """
import sys
from repro.telemetry import TelemetryWriter

path, tag, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
with TelemetryWriter(path) as w:
    for i in range(count):
        w.emit("dispatch.requeue", index=i, reason=tag * 40)
"""


class TestConcurrentWriters:
    def test_two_os_processes_never_interleave_lines(self, tmp_path):
        """Two OS processes hammering one file: every line must parse and
        both full event sequences must be present (O_APPEND atomicity)."""
        path = tmp_path / "shared.jsonl"
        count = 200
        env = dict(os.environ)
        src = str(
            __import__("pathlib").Path(__file__).resolve().parents[2] / "src"
        )
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _CONCURRENT_WRITER,
                 str(path), tag, str(count)],
                env=env,
            )
            for tag in ("a", "b")
        ]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        events = read_events(path, strict=True)  # strict: no torn lines
        assert len(events) == 2 * count
        for tag in ("a", "b"):
            indexes = [
                e["index"] for e in events if e["reason"] == tag * 40
            ]
            assert indexes == list(range(count))  # per-writer order kept


class TestDefaultSink:
    def test_emit_default_noop_without_sink(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        reset_default_writer()
        try:
            assert emit_default("dispatch.requeue", index=0) is None
        finally:
            reset_default_writer()

    def test_env_var_resolves_once(self, tmp_path, monkeypatch):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_TELEMETRY", str(path))
        reset_default_writer()
        try:
            assert emit_default("dispatch.requeue", index=5) is not None
            assert read_events(path)[0]["index"] == 5
        finally:
            reset_default_writer()

    def test_telemetry_to_scopes_and_restores(self, tmp_path):
        reset_default_writer()
        before = set_default_writer(None)
        try:
            with telemetry_to(tmp_path / "scoped.jsonl") as writer:
                emit_default("dispatch.requeue", index=1)
                assert writer.path.exists()
            assert emit_default("dispatch.requeue", index=2) is None
            assert len(read_events(tmp_path / "scoped.jsonl")) == 1
        finally:
            set_default_writer(before)
            reset_default_writer()
