"""Unit tests: parallel Monte-Carlo execution (repro.sim.montecarlo).

The load-bearing contract is serial/process bit-parity: the process backend
spawns the same per-trial seed sequences as the serial path, so
``MCResult.values`` must match element-for-element at any worker count.
Trial functions live at module level so they pickle under the ``spawn``
start method.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.sim import (
    ExecutionConfig,
    make_rng,
    run_trials,
    run_trials_batched,
    run_trials_parallel,
    spawn_map,
)


def double(x: float) -> float:
    return 2.0 * x


def bernoulli_trial(rng: np.random.Generator) -> float:
    return float(rng.random() < 0.3)


def multi_draw_trial(rng: np.random.Generator) -> float:
    # consumes a variable number of draws — the case child streams exist for
    k = int(rng.integers(1, 5))
    return float(rng.random(k).sum())


def uniform_batch(rng: np.random.Generator, k: int) -> np.ndarray:
    return rng.random(k)


def _in_pool_worker() -> bool:
    # the serial fallback runs trials in the parent (MainProcess); only a
    # spawned pool child should die, or the fault would kill the test run
    return multiprocessing.current_process().name != "MainProcess"


def suicidal_trial(rng: np.random.Generator) -> float:
    """Dies mid-chunk when run inside a pool worker (SIGKILL semantics:
    no exception, no cleanup — exactly a crashed worker box)."""
    if _in_pool_worker():
        os._exit(137)
    return float(rng.random())


def crashing_trial(rng: np.random.Generator) -> float:
    """Raises mid-chunk inside a pool worker (a bug, not a kill)."""
    if _in_pool_worker():
        raise RuntimeError("worker exploded mid-chunk")
    return float(rng.random())


def big_block(seed: float) -> np.ndarray:
    """A result large enough to cross the shm divert threshold (256 KiB)."""
    return np.random.default_rng(int(seed)).random(32_768)


def share_then_die(seed: float) -> float:
    """Worker writes a shared segment, then dies before any consumer
    attaches (SIGKILL semantics: no unlink, no atexit) — exactly the
    mid-write crash the run-scoped sweep must recover from."""
    if _in_pool_worker():
        from repro.sim import shm

        shm.ShmArena().share(np.zeros(16_384))
        os._exit(137)
    return float(seed)


class TestExecutionConfig:
    def test_defaults(self):
        cfg = ExecutionConfig()
        assert cfg.backend == "serial"
        assert cfg.resolved_workers() >= 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ExecutionConfig(backend="gpu")

    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError):
            ExecutionConfig(workers=0)

    def test_bad_chunk_rejected(self):
        with pytest.raises(ValueError):
            ExecutionConfig(chunk_size=0)

    def test_chunk_resolution_covers_all_trials(self):
        cfg = ExecutionConfig(backend="process", workers=4)
        chunk = cfg.resolved_chunk(10)
        assert chunk * 4 >= 10


class TestSpawnMap:
    def test_preserves_order(self):
        assert spawn_map(double, [1.0, 2.0, 3.0], workers=2) == [2.0, 4.0, 6.0]

    def test_generator_input(self):
        """Regression: one-shot iterables must not be re-iterated after
        being materialized (the pool previously saw an exhausted generator
        and silently returned [])."""
        out = spawn_map(double, (float(x) for x in range(4)), workers=2)
        assert out == [0.0, 2.0, 4.0, 6.0]

    def test_single_worker_serial(self):
        assert spawn_map(double, [5.0], workers=4) == [10.0]

    def test_empty(self):
        assert spawn_map(double, [], workers=4) == []


class TestSerialProcessParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bit_identical_values(self, workers):
        serial = run_trials(bernoulli_trial, 24, make_rng(7))
        par = run_trials_parallel(bernoulli_trial, 24, make_rng(7), workers=workers)
        assert np.array_equal(serial.values, par.values)
        assert serial.mean == par.mean
        assert (serial.lo, serial.hi) == (par.lo, par.hi)

    def test_parity_with_variable_draw_trials(self):
        serial = run_trials(multi_draw_trial, 16, make_rng(11))
        par = run_trials_parallel(multi_draw_trial, 16, make_rng(11), workers=2)
        assert np.array_equal(serial.values, par.values)

    def test_chunk_size_does_not_change_values(self):
        a = run_trials_parallel(bernoulli_trial, 20, make_rng(5), workers=2,
                                chunk_size=3)
        b = run_trials(bernoulli_trial, 20, make_rng(5))
        assert np.array_equal(a.values, b.values)

    def test_config_dispatch(self):
        cfg = ExecutionConfig(backend="process", workers=2)
        a = run_trials(bernoulli_trial, 12, make_rng(9), config=cfg)
        b = run_trials(bernoulli_trial, 12, make_rng(9))
        assert np.array_equal(a.values, b.values)

    def test_unpicklable_trial_falls_back_serial(self):
        reference = run_trials(lambda rng: rng.random(), 8, make_rng(4))
        with pytest.warns(RuntimeWarning, match="picklable"):
            par = run_trials_parallel(
                lambda rng: rng.random(), 8, make_rng(4), workers=2
            )
        assert np.array_equal(reference.values, par.values)


class TestVectorizedBackend:
    def test_deterministic_for_fixed_seed_and_chunk(self):
        a = run_trials_batched(uniform_batch, 50, make_rng(2), chunk_size=16)
        b = run_trials_batched(uniform_batch, 50, make_rng(2), chunk_size=16)
        assert np.array_equal(a.values, b.values)
        assert a.trials == 50 and a.values.shape == (50,)

    def test_mean_sane(self):
        res = run_trials_batched(uniform_batch, 400, make_rng(0), chunk_size=100)
        assert res.mean == pytest.approx(0.5, abs=0.07)
        assert res.lo <= res.mean <= res.hi

    def test_bad_batch_shape_rejected(self):
        with pytest.raises(ValueError):
            run_trials_batched(lambda rng, k: rng.random(k + 1), 10, make_rng(0))

    def test_config_dispatch_requires_batch(self):
        cfg = ExecutionConfig(backend="vectorized")
        with pytest.warns(RuntimeWarning, match="batch"):
            res = run_trials(bernoulli_trial, 10, make_rng(1), config=cfg)
        assert res.trials == 10  # fell back to serial

    def test_config_dispatch_with_batch(self):
        cfg = ExecutionConfig(backend="vectorized", chunk_size=8)
        res = run_trials(bernoulli_trial, 32, make_rng(1), config=cfg,
                         batch=uniform_batch)
        assert res.trials == 32


class TestFaultInjection:
    """A pool worker dying mid-chunk must never produce a silent partial
    result: either the serial fallback reproduces the full serial table,
    or the failure surfaces as a clear error."""

    def test_worker_killed_mid_chunk_reproduces_serial_result(self):
        serial = run_trials(suicidal_trial, 12, make_rng(3))
        with pytest.warns(RuntimeWarning, match="process pool broke"):
            par = run_trials_parallel(suicidal_trial, 12, make_rng(3), workers=2)
        # the broken pool degraded to the serial path and recomputed
        # every trial: bit-identical, nothing partial
        assert par.trials == 12
        assert np.array_equal(serial.values, par.values)
        assert (serial.mean, serial.lo, serial.hi) == (par.mean, par.lo, par.hi)

    def test_worker_killed_in_spawn_map_falls_back_whole(self):
        with pytest.warns(RuntimeWarning, match="process pool broke"):
            out = spawn_map(suicidal_trial, [make_rng(i) for i in range(4)],
                            workers=2)
        assert len(out) == 4  # every item recomputed in the parent

    def test_worker_exception_is_a_clear_error_not_a_partial_table(self):
        with pytest.raises(RuntimeError, match="exploded mid-chunk"):
            run_trials_parallel(crashing_trial, 12, make_rng(3), workers=2)


class TestWarmPool:
    """The process-wide warm pool: spawn once, reuse everywhere, resize
    only when a caller genuinely needs more workers."""

    def test_reuse_and_resize(self):
        from repro.sim.pool import get_pool, pool_stats, shutdown_pool

        shutdown_pool()
        before = pool_stats()
        first = get_pool(2)
        assert get_pool(2) is first        # same request: reuse
        assert get_pool(1) is first        # smaller request: reuse
        after = pool_stats()
        assert after["spawned"] == before["spawned"] + 1
        assert after["reused"] == before["reused"] + 2
        bigger = get_pool(3)               # needs more workers: respawn
        assert bigger is not first
        final = pool_stats()
        assert final["spawned"] == after["spawned"] + 1
        assert final["discarded"] >= after["discarded"] + 1
        shutdown_pool()

    def test_shutdown_idempotent(self):
        from repro.sim.pool import pool_stats, shutdown_pool

        shutdown_pool()
        before = pool_stats()
        shutdown_pool()                    # nothing to discard: no-op
        assert pool_stats() == before

    def test_spawn_map_reuses_the_warm_pool(self):
        from repro.sim.pool import pool_stats, shutdown_pool

        shutdown_pool()
        before = pool_stats()
        assert spawn_map(double, [1.0, 2.0, 3.0, 4.0], workers=2) == \
            [2.0, 4.0, 6.0, 8.0]
        assert spawn_map(double, [5.0, 6.0], workers=2) == [10.0, 12.0]
        after = pool_stats()
        assert after["spawned"] == before["spawned"] + 1
        assert after["reused"] >= before["reused"] + 1

    def test_spawn_and_reuse_emit_telemetry(self):
        from repro.sim.pool import get_pool, shutdown_pool
        from repro.telemetry import TelemetryBuffer, set_default_writer

        shutdown_pool()
        buf = TelemetryBuffer()
        previous = set_default_writer(buf)
        try:
            get_pool(2)
            get_pool(2)
        finally:
            set_default_writer(previous)
        (spawn,) = buf.of_type("pool.spawn")
        assert spawn["workers"] == 2 and spawn["mp_method"] == "spawn"
        (reuse,) = buf.of_type("pool.reuse")
        assert reuse["workers"] == 2 and reuse["requested"] == 2


class TestShmTransport:
    """shm_transport moves large results through shared segments: values
    stay byte-equal, nothing is left behind in /dev/shm, and the byte
    accounting surfaces as telemetry."""

    def test_spawn_map_shm_parity_and_no_leaks(self):
        from repro.sim import shm

        seeds = [0.0, 1.0, 2.0, 3.0]
        plain = spawn_map(big_block, seeds, workers=2)
        via_shm = spawn_map(big_block, seeds, workers=2, shm_transport=True)
        assert len(via_shm) == 4
        for a, b in zip(plain, via_shm):
            assert np.array_equal(a, b)
        assert shm.run_segments() == []

    def test_shm_transport_emits_byte_accounting(self):
        from repro.telemetry import TelemetryBuffer, set_default_writer

        buf = TelemetryBuffer()
        previous = set_default_writer(buf)
        try:
            spawn_map(big_block, [0.0, 1.0, 2.0, 3.0], workers=2,
                      shm_transport=True)
        finally:
            set_default_writer(previous)
        (event,) = buf.of_type("shm.bytes")
        # four 256 KiB results, all above the divert threshold: the
        # segments carried the arrays, the pipe carried headers
        assert event["segments"] == 4
        assert event["shm_bytes"] == 4 * 32_768 * 8
        assert 0 < event["pickle_bytes"] < event["shm_bytes"]

    def test_run_trials_parallel_leaves_no_segments(self):
        from repro.sim import shm

        serial = run_trials(bernoulli_trial, 24, make_rng(7))
        par = run_trials_parallel(bernoulli_trial, 24, make_rng(7), workers=2)
        assert np.array_equal(serial.values, par.values)
        assert shm.run_segments() == []

    def test_worker_killed_mid_write_leaves_no_segments(self):
        """The os._exit fault, extended to the shm layer: the dead worker's
        segment has no consumer, so the broken-pool path must sweep it —
        and the fallback must still produce every result."""
        from repro.sim import shm
        from repro.telemetry import TelemetryBuffer, set_default_writer

        prefix = shm.ensure_run_prefix()
        buf = TelemetryBuffer()
        previous = set_default_writer(buf)
        try:
            with pytest.warns(RuntimeWarning, match="process pool broke"):
                out = spawn_map(
                    share_then_die, [1.0, 2.0, 3.0, 4.0], workers=2,
                    shm_transport=True,
                )
        finally:
            set_default_writer(previous)
        assert out == [1.0, 2.0, 3.0, 4.0]  # serial fallback, complete
        assert shm.run_segments(prefix) == []
        (broken,) = buf.of_type("pool.broken")
        assert broken["swept_segments"] >= 1
