"""Unit tests: group graph search semantics (repro.core.group_graph)."""

import numpy as np
import pytest

from repro.core.group_graph import GroupGraph
from repro.core.params import SystemParams
from repro.inputgraph import make_input_graph


@pytest.fixture
def H():
    return make_input_graph("chord", np.random.default_rng(3).random(256))


@pytest.fixture
def params():
    return SystemParams(n=256, seed=0)


class TestConstruction:
    def test_red_shape_validated(self, H, params):
        with pytest.raises(ValueError):
            GroupGraph(H, params, red=np.zeros(5, dtype=bool))

    def test_fraction_red(self, H, params):
        red = np.zeros(H.n, dtype=bool)
        red[:64] = True
        gg = GroupGraph(H, params, red=red)
        assert gg.fraction_red == pytest.approx(0.25)

    def test_synthetic_red_rate(self, H, params):
        gg = GroupGraph.with_synthetic_red(H, params, 0.2, np.random.default_rng(0))
        assert 0.1 < gg.fraction_red < 0.3

    def test_neighbor_groups_follow_H(self, H, params):
        gg = GroupGraph(H, params, red=np.zeros(H.n, dtype=bool))
        assert np.array_equal(gg.neighbor_groups(7), H.neighbors(7))

    def test_default_group_sizes(self, H, params):
        gg = GroupGraph(H, params, red=np.zeros(H.n, dtype=bool))
        assert (gg.group_sizes == params.group_solicit_size).all()


class TestEvaluate:
    def test_all_blue_all_succeed(self, H, params):
        gg = GroupGraph(H, params, red=np.zeros(H.n, dtype=bool))
        rate, ev, _ = gg.sample_failure_rate(500, np.random.default_rng(1))
        assert rate == 0.0
        assert ev.success.all()

    def test_all_red_all_fail(self, H, params):
        gg = GroupGraph(H, params, red=np.ones(H.n, dtype=bool))
        rate, _, _ = gg.sample_failure_rate(200, np.random.default_rng(1))
        assert rate == 1.0

    def test_red_source_fails_search(self, H, params):
        red = np.zeros(H.n, dtype=bool)
        red[5] = True
        gg = GroupGraph(H, params, red=red)
        batch = H.route_many(np.array([5]), np.array([0.5]))
        ev = gg.evaluate(batch)
        assert not ev.success[0]

    def test_include_source_false_ignores_red_source(self, H, params):
        red = np.zeros(H.n, dtype=bool)
        red[5] = True
        gg = GroupGraph(H, params, red=red)
        # pick a target whose path from 5 doesn't revisit 5
        batch = H.route_many(np.array([5]), np.array([(H.ring.ids[5] + 0.43) % 1.0]))
        ev = gg.evaluate(batch, include_source=False)
        path = batch.paths[0]
        inner = path[path != -1][1:]
        if not red[inner].any():
            assert ev.success[0]

    def test_search_path_stops_at_first_red(self, H, params):
        rng = np.random.default_rng(2)
        batch = H.random_route_batch(300, rng)
        # mark the 2nd hop of query 0 red
        path0 = batch.paths[0]
        nodes = path0[path0 != -1]
        if nodes.size >= 3:
            red = np.zeros(H.n, dtype=bool)
            red[nodes[1]] = True
            gg = GroupGraph(H, params, red=red)
            ev = gg.evaluate(batch)
            assert not ev.success[0]
            assert ev.first_red_col[0] == 1
            # search-path mask covers exactly positions 0..1
            assert ev.search_path_mask[0, :2].all()
            assert not ev.search_path_mask[0, 2:].any()

    def test_failure_rate_close_to_union_estimate(self, H, params):
        rng = np.random.default_rng(4)
        gg = GroupGraph.with_synthetic_red(H, params, 0.02, rng)
        rate, ev, batch = gg.sample_failure_rate(4000, rng)
        mean_len = float((batch.paths != -1).sum(axis=1).mean())
        upper = gg.fraction_red * mean_len
        assert rate <= upper * 1.5 + 0.02


class TestResponsibility:
    def test_sums_to_mean_path_length(self, H, params):
        gg = GroupGraph(H, params, red=np.zeros(H.n, dtype=bool))
        rng = np.random.default_rng(5)
        rho = gg.responsibility(2000, rng)
        batch = H.random_route_batch(2000, np.random.default_rng(5))
        # sum of responsibilities ~ expected search-path length
        assert rho.sum() == pytest.approx(
            (batch.paths != -1).sum(axis=1).mean(), rel=0.2
        )

    def test_adversary_cannot_inflate_via_red_redirects(self, H, params):
        """Responsibility counts only search-path prefixes: marking groups
        red REDUCES measured traversals beyond them."""
        rng = np.random.default_rng(6)
        blue = GroupGraph(H, params, red=np.zeros(H.n, dtype=bool))
        rho_blue = blue.responsibility(4000, rng)
        red_mask = np.random.default_rng(7).random(H.n) < 0.3
        red = GroupGraph(H, params, red=red_mask)
        rho_red = red.responsibility(4000, np.random.default_rng(6))
        assert rho_red.sum() <= rho_blue.sum() + 0.5
