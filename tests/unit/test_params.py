"""Unit tests: system parameters (repro.core.params)."""

import math

import pytest

from repro.core.params import DEFAULTS, SystemParams


class TestValidation:
    def test_defaults_valid(self):
        assert DEFAULTS.n >= 8

    def test_n_too_small(self):
        with pytest.raises(ValueError):
            SystemParams(n=4)

    def test_beta_bounds(self):
        with pytest.raises(ValueError):
            SystemParams(beta=0.0)
        with pytest.raises(ValueError):
            SystemParams(beta=0.5)

    def test_threshold_must_stay_below_half(self):
        with pytest.raises(ValueError):
            SystemParams(beta=0.3, delta=1.0)  # (1+1)*0.3 = 0.6 >= 0.5

    def test_d1_le_d2(self):
        with pytest.raises(ValueError):
            SystemParams(d1=10.0, d2=2.0)

    def test_epoch_length_min(self):
        with pytest.raises(ValueError):
            SystemParams(epoch_length=1)


class TestDerived:
    def test_default_delta_gives_one_third_threshold(self):
        p = SystemParams(beta=0.05)
        assert p.bad_member_threshold == pytest.approx(1.0 / 3.0)
        p2 = SystemParams(beta=0.1)
        assert p2.bad_member_threshold == pytest.approx(1.0 / 3.0)

    def test_ln_ln_n_floor(self):
        # tiny systems must not produce degenerate sizes
        p = SystemParams(n=8)
        assert p.ln_ln_n >= 1.0

    def test_group_sizes_scale_with_n(self):
        small = SystemParams(n=64)
        large = SystemParams(n=2**20)
        assert small.group_solicit_size <= large.group_solicit_size
        assert large.group_solicit_size < large.logn_group_size

    def test_group_min_le_solicit(self):
        for n in (64, 1024, 2**16):
            p = SystemParams(n=n)
            assert p.group_min_size <= p.group_solicit_size

    def test_churn_slack_positive(self):
        p = SystemParams(beta=0.05)
        assert p.churn_slack == pytest.approx(1.0 / 3.0)

    def test_pf_target(self):
        p = SystemParams(n=1024, k=3.0)
        assert p.pf_target == pytest.approx(1.0 / math.log(1024) ** 3)

    def test_route_length_bound_log(self):
        p = SystemParams(n=1024)
        assert p.route_length_bound >= math.log2(1024)

    def test_effective_beta(self):
        p = SystemParams(beta=0.09)
        assert p.effective_beta() == pytest.approx(0.03)


class TestWith:
    def test_with_replaces(self):
        p = SystemParams(n=512).with_(n=1024)
        assert p.n == 1024

    def test_with_beta_recouples_delta(self):
        p = SystemParams(beta=0.05).with_(beta=0.1)
        assert p.bad_member_threshold == pytest.approx(1.0 / 3.0)

    def test_frozen(self):
        p = SystemParams()
        with pytest.raises(Exception):
            p.n = 99  # type: ignore[misc]

    def test_describe_mentions_key_values(self):
        s = SystemParams(n=1024, beta=0.05).describe()
        assert "n=1024" in s and "0.05" in s
