"""Unit tests: bootstrap groups (App. IX) and ε-robustness evaluation."""

import numpy as np
import pytest

from repro.core.bootstrap import (
    bootstrap_failure_probability,
    bootstrap_group_count,
    form_bootstrap_group,
)
from repro.core.dynamic import EpochSimulator
from repro.core.group_graph import GroupGraph
from repro.core.params import SystemParams
from repro.core.robustness import evaluate_robustness
from repro.inputgraph import make_input_graph


@pytest.fixture
def sim():
    return EpochSimulator(SystemParams(n=256, beta=0.05, seed=3), probes=300)


class TestBootstrap:
    def test_count_scales(self):
        small = bootstrap_group_count(SystemParams(n=64))
        large = bootstrap_group_count(SystemParams(n=2**20))
        assert large >= small >= 2

    def test_committee_pools_members(self, sim):
        bg = form_bootstrap_group(sim.pair, sim.params, np.random.default_rng(0))
        assert bg.size > 0
        assert bg.groups_contacted == bootstrap_group_count(sim.params)

    def test_good_majority_whp(self, sim):
        fail = bootstrap_failure_probability(
            sim.pair, sim.params, trials=100, rng=np.random.default_rng(1)
        )
        assert fail < 0.05

    def test_fails_when_system_overrun(self):
        """Failure injection: at beta near 1/2 bootstrap majorities die."""
        sim = EpochSimulator(
            SystemParams(n=256, beta=0.45, delta=0.05, seed=3), probes=300
        )
        fail = bootstrap_failure_probability(
            sim.pair, sim.params, trials=60, rng=np.random.default_rng(1)
        )
        assert fail > 0.2


class TestRobustness:
    @pytest.fixture
    def H(self):
        return make_input_graph("chord", np.random.default_rng(5).random(256))

    def test_all_blue_perfect(self, H):
        params = SystemParams(n=256, seed=0)
        gg = GroupGraph(H, params, red=np.zeros(256, dtype=bool))
        rep = evaluate_robustness(gg, np.random.default_rng(0))
        assert rep.epsilon_achieved == 0.0
        assert rep.within_target()

    def test_all_red_hopeless(self, H):
        params = SystemParams(n=256, seed=0)
        gg = GroupGraph(H, params, red=np.ones(256, dtype=bool))
        rep = evaluate_robustness(gg, np.random.default_rng(0))
        assert rep.fraction_blocked_ids == 1.0
        assert not rep.within_target()

    def test_eps_monotone_in_red(self, H):
        params = SystemParams(n=256, seed=0)
        rng = np.random.default_rng(1)
        lo = evaluate_robustness(
            GroupGraph.with_synthetic_red(H, params, 0.01, rng),
            np.random.default_rng(2),
        )
        hi = evaluate_robustness(
            GroupGraph.with_synthetic_red(H, params, 0.2, rng),
            np.random.default_rng(2),
        )
        assert hi.epsilon_achieved >= lo.epsilon_achieved

    def test_rows_render(self, H):
        params = SystemParams(n=256, seed=0)
        gg = GroupGraph(H, params, red=np.zeros(256, dtype=bool))
        rep = evaluate_robustness(gg, np.random.default_rng(0))
        assert len(rep.rows()) == 5
