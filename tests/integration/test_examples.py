"""Integration: every example script runs to completion.

The examples are the deliverable a new user touches first; this test keeps
them executable as the library evolves.  Each runs in a subprocess with the
repository's interpreter and must exit 0 with its headline output present.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

CASES = {
    "quickstart.py": "ε-robustness",
    "decentralized_storage.py": "Retrievability",
    "open_compute_platform.py": "computed correctly",
    "adversarial_attacks.py": "Attack gallery",
    "full_lifecycle.py": "lifecycle complete",
}


@pytest.mark.slow
@pytest.mark.parametrize("script,marker", sorted(CASES.items()))
def test_example_runs(script, marker):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert marker in proc.stdout


def test_all_examples_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(CASES), "update CASES when adding examples"
