"""Integration: every registered experiment runs and yields a sane table.

Guards the experiment registry as a whole: each run() must return a
non-empty TableResult whose rows match its header width — so a broken
experiment can never silently ship an empty table into EXPERIMENTS.md.
Key shape assertions per experiment live in test_end_to_end.py; this file
is the coverage net.
"""

import pytest

from repro.analysis.tables import TableResult
from repro.experiments import EXPERIMENTS, run_all, run_experiment

# tiny-config overrides so the full sweep stays fast in CI
FAST_OVERRIDES = {
    "E1": dict(n_values=(128,), probes=2000, topologies=("chord",)),
    "E2": dict(n=256, probes=3000, pf_values=(0.01, 0.05)),
    "E3": dict(n=256, betas=(0.05,), d2_values=(6.0, 10.0)),
    "E4": dict(n=128, epochs=2),
    "E5": dict(n=128, pf0_values=(0.01, 0.05), analytic_epochs=4),
    "E6": dict(n_values=(256,), probes=1000),
    "E7": dict(n=128, epochs=2),
    "E8": dict(trials=6),
    "E9": dict(n=128),
    "E10": dict(horizons=(2, 20)),
    "E11": dict(n_measured=256, sizes=(3, 8, 16), probes=2000,
                n_theory=(2**8, 2**12)),
    "E12": dict(n=1024, sizes=(8, 32), events=2000),
    "E13": dict(epochs=3),
    "E14": dict(n=256, objects=60, churn_rounds=2),
    "E15": dict(n=128, epochs=3),
}


@pytest.mark.parametrize("name", sorted(EXPERIMENTS, key=lambda k: int(k[1:])))
def test_experiment_produces_table(name):
    table = run_experiment(name, seed=1, fast=True, **FAST_OVERRIDES.get(name, {}))
    assert isinstance(table, TableResult)
    assert table.experiment == name
    assert table.rows, f"{name} produced no rows"
    width = len(table.headers)
    assert all(len(row) == width for row in table.rows)
    rendered = table.render()
    assert f"[{name}]" in rendered


# the experiments promoted to the vectorized kernels: the static-case
# pipeline (PR 3) plus the dynamic-case trajectories (E4 epochs, E8 PoW
# windows, E12 churn — this PR)
KERNEL_EXPERIMENTS = ("E1", "E2", "E3", "E4", "E5", "E6", "E8", "E12")


@pytest.mark.parametrize(
    "name",
    [
        # the E4 serial reference costs ~45s at this point alone — it is
        # the canonical >10s case the `slow` marker exists for
        pytest.param(n, marks=pytest.mark.slow) if n == "E4" else n
        for n in KERNEL_EXPERIMENTS
    ],
)
def test_serial_and_vectorized_backends_render_identical(name):
    """Acceptance bar of the kernel layer: the explicit serial backend (the
    reference loop implementations) and the default vectorized kernels must
    render bit-identical tables."""
    from repro.sim import ExecutionConfig

    kwargs = dict(seed=3, fast=True, **FAST_OVERRIDES.get(name, {}))
    serial = run_experiment(
        name, exec_config=ExecutionConfig(backend="serial"), **kwargs
    )
    vectorized = run_experiment(
        name, exec_config=ExecutionConfig(backend="vectorized"), **kwargs
    )
    default = run_experiment(name, **kwargs)  # no config -> vectorized kernels
    assert serial.render() == vectorized.render() == default.render()


def test_registry_is_dense():
    """E1..E15 with no gaps — DESIGN.md §3 promises one per claim."""
    nums = sorted(int(k[1:]) for k in EXPERIMENTS)
    assert nums == list(range(1, len(nums) + 1))


def test_run_experiment_unknown():
    with pytest.raises(ValueError):
        run_experiment("E99")


def test_run_experiment_case_insensitive():
    t = run_experiment("e10", fast=True, horizons=(2,))
    assert t.experiment == "E10"


def test_run_experiment_rejects_unknown_override():
    """Typo'd overrides raise a TypeError naming the experiment up front,
    not an opaque traceback from inside the module."""
    with pytest.raises(TypeError, match=r"E12.*bogus_knob"):
        run_experiment("E12", bogus_knob=1)


def test_run_experiment_error_lists_valid_overrides():
    with pytest.raises(TypeError, match="epoch_length"):
        run_experiment("E8", trails=5)  # typo of "trials"


def test_run_all_rejects_seed_fast_as_overrides():
    """seed/fast are run_all parameters; smuggling them through the
    overrides mapping must fail up front with the experiment named, not
    as a duplicate-keyword crash inside (possibly a spawn worker's)
    dispatch."""
    with pytest.raises(TypeError, match="E1.*seed"):
        run_all(names=("E1",), overrides={"E1": {"seed": 5}})
    with pytest.raises(TypeError, match="E1.*fast"):
        run_all(names=("E1",), overrides={"E1": {"fast": False}})


def test_run_all_rejects_overrides_for_experiments_outside_run():
    """Override entries that no requested experiment will consume are an
    error, not silently dead configuration."""
    with pytest.raises(ValueError, match="E2"):
        run_all(names=("E1",), overrides={"E2": {"probes": 9}})


def test_run_all_validates_overrides_before_dispatch():
    """Unknown overrides for ANY requested experiment fail in the parent
    before any experiment body runs."""
    from repro.sim import cells_executed, reset_cells_executed

    reset_cells_executed()
    with pytest.raises(TypeError, match="E13.*bogus"):
        run_all(names=("E1", "E13"), overrides={"E13": {"bogus": 1}})
    assert cells_executed() == 0


def test_run_all_override_keys_case_insensitive():
    """Lowercase override keys must reach (and cache-key) the uppercased
    experiment instead of being silently dropped."""
    lower = run_all(names=("e13",), overrides={"e13": dict(epochs=2)})
    upper = run_all(names=("E13",), overrides={"E13": dict(epochs=2)})
    assert lower["E13"].render() == upper["E13"].render()
    assert len(lower["E13"].rows) == 2  # the override actually applied


def test_exec_config_process_matches_serial():
    """Experiment-level parity: the process backend changes wall-clock
    behaviour only, never table content."""
    from repro.sim import ExecutionConfig

    kwargs = dict(seed=3, fast=True, **FAST_OVERRIDES["E8"])
    serial = run_experiment("E8", **kwargs)
    par = run_experiment(
        "E8", exec_config=ExecutionConfig(backend="process", workers=2), **kwargs
    )
    assert serial.rows == par.rows


# the genuinely cell-parallel sweeps; ISSUE-2 acceptance: bit-identical
# tables across serial, 2-worker, and 4-worker cell-parallel runs
CELL_PARALLEL = ("E1", "E2", "E3", "E5")


@pytest.mark.parametrize("name", CELL_PARALLEL)
def test_sweep_cell_parallel_bit_identical(name):
    from repro.sim import ExecutionConfig

    kwargs = dict(seed=1, fast=True, **FAST_OVERRIDES[name])
    serial = run_experiment(name, **kwargs)
    for workers in (2, 4):
        par = run_experiment(
            name,
            exec_config=ExecutionConfig(backend="process", workers=workers),
            **kwargs,
        )
        assert serial.rows == par.rows, f"{name} diverged at {workers} workers"
        assert serial.render() == par.render()


class TestResultCacheIntegration:
    def test_cold_run_vs_cache_hit_identical(self, tmp_path):
        from repro.sim import cells_executed, reset_cells_executed

        kwargs = dict(seed=1, fast=True, cache=True, cache_dir=str(tmp_path),
                      **FAST_OVERRIDES["E1"])
        cold = run_experiment("E1", **kwargs)
        reset_cells_executed()
        warm = run_experiment("E1", **kwargs)
        assert cells_executed() == 0  # nothing re-ran
        assert warm.render() == cold.render()
        assert warm.rows == cold.rows

    def test_force_recomputes(self, tmp_path):
        from repro.sim import cells_executed, reset_cells_executed

        kwargs = dict(seed=1, fast=True, cache=True, cache_dir=str(tmp_path),
                      **FAST_OVERRIDES["E1"])
        run_experiment("E1", **kwargs)
        reset_cells_executed()
        forced = run_experiment("E1", force=True, **kwargs)
        assert cells_executed() > 0
        assert forced.rows == run_experiment("E1", **kwargs).rows

    def test_cache_key_respects_overrides(self, tmp_path):
        from repro.sim import cells_executed, reset_cells_executed

        base = dict(seed=1, fast=True, cache=True, cache_dir=str(tmp_path))
        run_experiment("E1", **base, **FAST_OVERRIDES["E1"])
        reset_cells_executed()
        different = dict(FAST_OVERRIDES["E1"], probes=1000)
        run_experiment("E1", **base, **different)
        assert cells_executed() > 0  # different overrides: a real run

    def test_warm_run_all_reruns_zero_cells(self, tmp_path):
        """ISSUE-2 acceptance: a warm ``run_all --cache`` re-executes zero
        experiment bodies, verified by the cell-execution counter."""
        from repro.sim import cells_executed, reset_cells_executed

        names = ("E1", "E5", "E13")
        overrides = {n: dict(FAST_OVERRIDES[n]) for n in names}
        kwargs = dict(seed=1, fast=True, cache=True, cache_dir=str(tmp_path),
                      names=names, overrides=overrides)
        cold = run_all(**kwargs)
        assert cells_executed() > 0
        reset_cells_executed()
        warm = run_all(**kwargs)
        assert cells_executed() == 0
        assert {k: v.render() for k, v in warm.items()} == {
            k: v.render() for k, v in cold.items()
        }

    def test_run_all_subset_order_and_unknown(self):
        with pytest.raises(ValueError, match="E99"):
            run_all(names=("E99",))

    def test_warm_process_run_all_resolves_in_parent(self, tmp_path, monkeypatch):
        """With every experiment cached, the process-backend run_all loads
        hits in the parent and dispatches nothing to a pool (observed by
        intercepting the dispatch seam — worker-side recomputation would
        also render identically, so render parity alone proves nothing)."""
        import repro.experiments.runner as runner_mod
        from repro.sim import ExecutionConfig

        names = ("E1", "E13")
        overrides = {n: dict(FAST_OVERRIDES[n]) for n in names}
        kwargs = dict(seed=1, fast=True, cache=True, cache_dir=str(tmp_path),
                      names=names, overrides=overrides)
        cold = run_all(**kwargs)

        dispatched = []

        def spying_spawn_map(fn, *iterables, workers):
            items = list(zip(*iterables))
            dispatched.extend(items)
            return [fn(*args) for args in items]

        monkeypatch.setattr(runner_mod, "spawn_map", spying_spawn_map)
        warm = run_all(
            exec_config=ExecutionConfig(backend="process", workers=2), **kwargs
        )
        assert dispatched == []  # every experiment resolved from the cache
        assert {k: v.render() for k, v in warm.items()} == {
            k: v.render() for k, v in cold.items()
        }


def test_run_all_process_threads_serial_config_and_overrides(tmp_path):
    """The spawn-pool path hands workers an explicit serial trial-loop
    config plus the caller's cache settings and per-experiment overrides
    (regression: ``_run_one`` used to drop the caller's ``exec_config``
    and knew nothing of caching) — so a process-backend ``run_all`` is
    table-identical to the serial path and populates the same cache."""
    from repro.experiments.cache import ResultCache
    from repro.sim import ExecutionConfig

    names = ("E1", "E13")
    overrides = {n: dict(FAST_OVERRIDES[n]) for n in names}
    serial = run_all(seed=1, fast=True, names=names, overrides=overrides)
    par = run_all(
        seed=1, fast=True, names=names, overrides=overrides,
        cache=True, cache_dir=str(tmp_path),
        exec_config=ExecutionConfig(backend="process", workers=2),
    )
    assert {k: v.render() for k, v in par.items()} == {
        k: v.render() for k, v in serial.items()
    }
    # the workers stored their tables under the shared cache root
    rc = ResultCache(tmp_path)
    for name in names:
        hit = rc.load(name, 1, True, overrides[name])
        assert hit is not None and hit.render() == serial[name].render()


def test_e12_per_case_streams_cross_backend_deterministic():
    """E12's churn cases draw from per-case streams spawned off the cell's
    sweep stream (the single entropy source — no seed re-derivation inside
    the case), so serial kernel, vectorized kernel, and a 2-worker spawn
    pool must all render the byte-identical table."""
    from repro.sim import ExecutionConfig

    kwargs = dict(seed=5, fast=True, **FAST_OVERRIDES["E12"])
    serial = run_experiment(
        "E12", exec_config=ExecutionConfig(backend="serial"), **kwargs
    )
    default = run_experiment("E12", **kwargs)
    pooled = run_experiment(
        "E12", exec_config=ExecutionConfig(backend="process", workers=2), **kwargs
    )
    assert serial.render() == default.render() == pooled.render()


@pytest.mark.slow
def test_e4_trajectory_table_independent_of_probe_kernel_scale():
    """Changing only the kernel must never change an E4 table even at a
    different (n, epochs) point than the parity matrix covers."""
    from repro.sim import ExecutionConfig

    kwargs = dict(seed=11, fast=True, n=96, epochs=3, probes=300)
    serial = run_experiment(
        "E4", exec_config=ExecutionConfig(backend="serial"), **kwargs
    )
    vectorized = run_experiment("E4", **kwargs)
    assert serial.render() == vectorized.render()
