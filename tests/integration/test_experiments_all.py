"""Integration: every registered experiment runs and yields a sane table.

Guards the experiment registry as a whole: each run() must return a
non-empty TableResult whose rows match its header width — so a broken
experiment can never silently ship an empty table into EXPERIMENTS.md.
Key shape assertions per experiment live in test_end_to_end.py; this file
is the coverage net.
"""

import pytest

from repro.analysis.tables import TableResult
from repro.experiments import EXPERIMENTS, run_all, run_experiment

# tiny-config overrides so the full sweep stays fast in CI
FAST_OVERRIDES = {
    "E1": dict(n_values=(128,), probes=2000, topologies=("chord",)),
    "E2": dict(n=256, probes=3000, pf_values=(0.01, 0.05)),
    "E3": dict(n=256, betas=(0.05,), d2_values=(6.0, 10.0)),
    "E4": dict(n=128, epochs=2),
    "E5": dict(n=128, pf0_values=(0.01, 0.05), analytic_epochs=4),
    "E6": dict(n_values=(256,), probes=1000),
    "E7": dict(n=128, epochs=2),
    "E8": dict(trials=6),
    "E9": dict(n=128),
    "E10": dict(horizons=(2, 20)),
    "E11": dict(n_measured=256, sizes=(3, 8, 16), probes=2000,
                n_theory=(2**8, 2**12)),
    "E12": dict(n=1024, sizes=(8, 32), events=2000),
    "E13": dict(epochs=3),
    "E14": dict(n=256, objects=60, churn_rounds=2),
    "E15": dict(n=128, epochs=3),
}


@pytest.mark.parametrize("name", sorted(EXPERIMENTS, key=lambda k: int(k[1:])))
def test_experiment_produces_table(name):
    table = run_experiment(name, seed=1, fast=True, **FAST_OVERRIDES.get(name, {}))
    assert isinstance(table, TableResult)
    assert table.experiment == name
    assert table.rows, f"{name} produced no rows"
    width = len(table.headers)
    assert all(len(row) == width for row in table.rows)
    rendered = table.render()
    assert f"[{name}]" in rendered


def test_registry_is_dense():
    """E1..E15 with no gaps — DESIGN.md §3 promises one per claim."""
    nums = sorted(int(k[1:]) for k in EXPERIMENTS)
    assert nums == list(range(1, len(nums) + 1))


def test_run_experiment_unknown():
    with pytest.raises(ValueError):
        run_experiment("E99")


def test_run_experiment_case_insensitive():
    t = run_experiment("e10", fast=True, horizons=(2,))
    assert t.experiment == "E10"


def test_run_experiment_rejects_unknown_override():
    """Typo'd overrides raise a TypeError naming the experiment up front,
    not an opaque traceback from inside the module."""
    with pytest.raises(TypeError, match=r"E12.*bogus_knob"):
        run_experiment("E12", bogus_knob=1)


def test_run_experiment_error_lists_valid_overrides():
    with pytest.raises(TypeError, match="epoch_length"):
        run_experiment("E8", trails=5)  # typo of "trials"


def test_exec_config_process_matches_serial():
    """Experiment-level parity: the process backend changes wall-clock
    behaviour only, never table content."""
    from repro.sim import ExecutionConfig

    kwargs = dict(seed=3, fast=True, **FAST_OVERRIDES["E8"])
    serial = run_experiment("E8", **kwargs)
    par = run_experiment(
        "E8", exec_config=ExecutionConfig(backend="process", workers=2), **kwargs
    )
    assert serial.rows == par.rows
