"""Integration: full-stack static and dynamic runs against Theorem 3."""

import numpy as np
import pytest

from repro.adversary import ClusterAdversary, OmissionAdversary, UniformAdversary
from repro.churn import TargetedChurn, UniformChurn
from repro.core.dynamic import EpochSimulator
from repro.core.params import SystemParams
from repro.core.robustness import evaluate_robustness
from repro.core.static_case import constructive_static_graph
from repro.inputgraph import make_input_graph, validate_properties


class TestStaticEndToEnd:
    @pytest.mark.parametrize("topology", ["chord", "distance-halving"])
    def test_population_to_robustness(self, topology):
        rng = np.random.default_rng(21)
        params = SystemParams(n=512, beta=0.05, seed=0)
        adv = UniformAdversary(params.beta)
        ids, bad = adv.population(params.n, rng)
        H = make_input_graph(topology, ids)
        gg, gs, quality = constructive_static_graph(H, params, bad, rng=rng)
        rep = evaluate_robustness(gg, rng)
        # Theorem 3 shape: all three fractions at the 1/polylog scale
        assert rep.fraction_red < 0.05
        assert rep.fraction_failed_searches < 0.10
        assert rep.fraction_unreachable_resources < 0.10

    def test_lemma5_omission_preserves_properties(self):
        """Lemma 5: P1-P4 survive an adversary fielding only a subset of
        its u.a.r. IDs (unlike arbitrary placement)."""
        rng = np.random.default_rng(22)
        adv = OmissionAdversary(0.2, start=0.1, width=0.3)
        ids, bad = adv.population(1024, rng)
        H = make_input_graph("chord", ids)
        rep = validate_properties(H, probes=8000, rng=rng)
        assert rep.ok(), rep.satisfied

    def test_cluster_placement_would_break_load_balance(self):
        """Contrast for Lemma 5 / §IV-A: *arbitrary* placement (what PoW
        prevents) concentrates key-space ownership on adversarial IDs."""
        rng = np.random.default_rng(23)
        adv = ClusterAdversary(0.2, start=0.499, width=0.002)
        ids, bad = adv.population(1024, rng)
        from repro.idspace.ring import Ring

        ring = Ring(ids)
        # the cluster's collective responsibility should stay ~beta under
        # u.a.r. placement, but the clustered IDs grab the arc they ring
        arcs = ring.arc_lengths()
        # the arc just past the cluster is owned by bad IDs en masse:
        # bad IDs make up 20% of the count but sit in 0.2% of the space,
        # so each owns almost nothing EXCEPT they capture all keys hashing
        # into the cluster — verify the concentration
        frac_inside = np.mod(ids - 0.499, 1.0) < 0.002
        assert frac_inside.mean() > 0.15  # 20% of IDs inside 0.2% of space


class TestDynamicEndToEnd:
    def test_theorem3_stability_with_uniform_churn(self):
        params = SystemParams(n=256, beta=0.05, d1=2.5, d2=10.0, seed=5)
        sim = EpochSimulator(
            params, churn=UniformChurn(rate=0.05), probes=1500,
            rng=np.random.default_rng(5),
        )
        reports = sim.run(4)
        for rep in reports:
            assert rep.fraction_red < 0.08
            assert rep.robustness.epsilon_achieved < 0.25

    def test_theorem3_stability_with_targeted_churn(self):
        """Worst-case departure schedule inside the eps'/2 model."""
        params = SystemParams(n=256, beta=0.05, d1=2.5, d2=10.0, seed=6)
        sim = EpochSimulator(
            params, churn=TargetedChurn(), probes=1500,
            rng=np.random.default_rng(6),
        )
        reports = sim.run(3)
        assert reports[-1].fraction_red < 0.15

    def test_memberships_stay_loglog(self):
        params = SystemParams(n=256, beta=0.05, seed=7)
        sim = EpochSimulator(params, probes=800, rng=np.random.default_rng(7))
        rep = sim.run(2)[-1]
        assert rep.mean_membership < 2.5 * params.group_solicit_size

    def test_cluster_adversary_blocked_by_uar_assumption(self):
        """With PoW the adversary cannot cluster; run the sim with a
        clustered strategy to demonstrate what the defense prevents:
        groups whose membership points hash into the cluster go bad."""
        params = SystemParams(n=256, beta=0.10, seed=8)
        sim_uniform = EpochSimulator(
            params, adversary=UniformAdversary(0.10), probes=800,
            rng=np.random.default_rng(8),
        )
        sim_cluster = EpochSimulator(
            params, adversary=ClusterAdversary(0.10, start=0.2, width=0.01),
            probes=800, rng=np.random.default_rng(8),
        )
        r_uni = sim_uniform.step()
        r_clu = sim_cluster.step()
        # clustered IDs own only the cluster arc => they capture ~width of
        # the key space rather than beta — the *groups* stay good, but the
        # cluster's keys are wholly owned; both effects are visible in the
        # bad-candidate rate
        assert r_clu.build_1.bad_candidate_rate < r_uni.build_1.bad_candidate_rate


class TestExperimentSmoke:
    """Every experiment runs at tiny scale and reports its key 'ok' cells."""

    def test_e1_within_bounds(self):
        from repro.experiments import run_experiment

        tab = run_experiment(
            "E1", fast=True, n_values=(128,), probes=3000,
            topologies=("chord",),
        )
        assert all(v == "ok" for v in tab.column("within"))

    def test_e2_slope_sane(self):
        from repro.experiments import run_experiment

        tab = run_experiment("E2", fast=True, n=256, probes=4000,
                             pf_values=(0.01, 0.05))
        rates = [float(x) for x in tab.column("X measured")]
        assert rates[0] < rates[1]

    def test_e3_within(self):
        from repro.experiments import run_experiment

        tab = run_experiment(
            "E3", fast=True, n=512, betas=(0.05,), d2_values=(8.0,)
        )
        assert all(v == "ok" for v in tab.column("within 3x+noise"))

    def test_e8_all_ok(self):
        from repro.experiments import run_experiment

        tab = run_experiment("E8", fast=True, trials=8)
        within = [v for v in tab.column("within") if v != "-"]
        assert all(v == "ok" for v in within)

    def test_e10_defense_never_loses_majority(self):
        from repro.experiments import run_experiment

        tab = run_experiment("E10", fast=True, horizons=(2, 20))
        rows = tab.rows
        for row in rows:
            if row[1] == "fresh strings":
                assert row[4] == "no"
