"""Integration: the paper's Figure 1 worked example.

Figure 1 shows a search ``w -> y`` in the input graph ``H`` traversing
``u`` and ``v``, mirrored in the group graph by ``G_w -> G_u -> G_v -> G_y``
with all-to-all links; red groups ("B") on the path derail the search.

We reconstruct the scenario on a real ring: route a search, identify its
traversed groups, and verify (a) an all-blue path delivers via secure
routing, (b) painting any traversed group red fails exactly that search,
and (c) the first red group truncates the search path (the adversary owns
everything beyond it).
"""

import numpy as np
import pytest

from repro.core.group_graph import GroupGraph
from repro.core.params import SystemParams
from repro.core.secure_routing import SecureRouter
from repro.inputgraph import make_input_graph


@pytest.fixture(scope="module")
def scenario():
    rng = np.random.default_rng(17)
    H = make_input_graph("chord", rng.random(128))
    params = SystemParams(n=128, seed=0)
    # find a search with at least 4 traversed groups (w, u, v, y of Fig. 1)
    for _ in range(200):
        w = int(rng.integers(128))
        key = float(rng.random())
        path, ok = H.route(w, key)
        if ok and len(path) >= 4:
            return H, params, w, key, path
    raise RuntimeError("no suitable 4-hop search found")


class TestFigure1:
    def test_blue_path_delivers(self, scenario):
        H, params, w, key, path = scenario
        gg = GroupGraph(H, params, red=np.zeros(H.n, dtype=bool))
        out = SecureRouter(gg).search(w, key, payload="SONG.mp3")
        assert out.delivered
        assert np.array_equal(out.path, path)

    @pytest.mark.parametrize("position", [1, 2])
    def test_red_group_on_path_fails_search(self, scenario, position):
        H, params, w, key, path = scenario
        red = np.zeros(H.n, dtype=bool)
        red[path[position]] = True  # G_u or G_v turns red ("B" in Fig. 1)
        gg = GroupGraph(H, params, red=red)
        out = SecureRouter(gg).search(w, key, payload="SONG.mp3")
        assert out.corrupted and not out.delivered

    def test_search_path_truncated_at_first_red(self, scenario):
        H, params, w, key, path = scenario
        red = np.zeros(H.n, dtype=bool)
        red[path[2]] = True
        gg = GroupGraph(H, params, red=red)
        batch = H.route_many(np.array([w]), np.array([key]))
        ev = gg.evaluate(batch)
        assert ev.first_red_col[0] == 2
        # the search-path mask covers w, u, and the red group — nothing past
        assert ev.search_path_mask[0, : 3].all()
        assert not ev.search_path_mask[0, 3:].any()

    def test_red_group_off_path_is_harmless(self, scenario):
        H, params, w, key, path = scenario
        red = np.zeros(H.n, dtype=bool)
        off = [g for g in range(H.n) if g not in set(path)]
        red[off[:10]] = True
        gg = GroupGraph(H, params, red=red)
        out = SecureRouter(gg).search(w, key, payload="SONG.mp3")
        assert out.delivered

    def test_all_to_all_message_cost(self, scenario):
        """Each Fig.-1 edge is |G|x|G| messages (the cost Cor. 1 counts)."""
        H, params, w, key, path = scenario
        gg = GroupGraph(H, params, red=np.zeros(H.n, dtype=bool))
        out = SecureRouter(gg).search(w, key)
        s = params.group_solicit_size
        assert out.messages == (len(path) - 1) * s * s
