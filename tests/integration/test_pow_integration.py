"""Integration: PoW identity layer driving epochs (Section IV end to end).

Full loop: global string adopted -> IDs minted under it -> population forms
a group graph -> string propagation over that graph produces the *next*
epoch's string -> old IDs expire.
"""

import numpy as np
import pytest

from repro.adversary import UniformAdversary
from repro.core.params import SystemParams
from repro.core.static_case import constructive_static_graph
from repro.idspace.hashing import OracleSuite
from repro.idspace.ring import Ring
from repro.inputgraph import make_input_graph
from repro.pow.identity import IdentityRegistry
from repro.pow.propagation import StringPropagation
from repro.pow.puzzles import PuzzleScheme


@pytest.mark.slow
class TestPowEpochLoop:
    def test_two_epoch_cycle(self):
        rng = np.random.default_rng(31)
        n, beta, T = 384, 0.08, 1024
        params = SystemParams(n=n, beta=beta, epoch_length=T, seed=31)
        suite = OracleSuite(seed=31)
        scheme = PuzzleScheme(suite, epoch_length=T)
        registry = IdentityRegistry(scheme, n=n, beta=beta)
        registry.set_epoch_string(1, 0xA11CE)

        # --- epoch 1: mint population under r_0 --------------------------------
        ms = registry.mint_epoch(1, rng)
        assert ms.n_bad <= 1.20 * 1.5 * beta * n  # Lemma 11 with slack
        ids = np.concatenate([ms.good_ids, ms.bad_ids])
        bad = np.zeros(ids.size, dtype=bool)
        bad[ms.n_good :] = True
        order = np.argsort(ids, kind="stable")
        ring = Ring(ids[order])
        bad = bad[order][: ring.n]

        # --- group graph over the minted population ----------------------------
        H = make_input_graph("chord", ring)
        gg, gs, quality = constructive_static_graph(H, params, bad, rng=rng)
        assert quality.bad_group_fraction < 0.05

        # --- propagate the next global string over the graph -------------------
        indptr, indices = H.neighbor_lists()
        prop = StringPropagation(
            indptr, indices, ~gg.red, group_size=params.group_solicit_size,
            epoch_length=T,
        )
        res = prop.run(rng, adversary_beta=beta, delayed_release=True)
        assert res.agreement
        assert res.max_solution_set <= np.ceil(2.5 * np.log(ring.n)) + 1

        # --- expiry: epoch-1 cards die under the epoch-2 string ----------------
        registry.set_epoch_string(2, 0xB0B)
        card = registry.mint_card(1, rng)
        assert card is not None
        assert registry.verify_card(card, 1)
        assert not registry.verify_card(card, 2)

    def test_effective_beta_revision(self):
        """§IV-A: running the protocol at beta/3 absorbs the banking window."""
        params = SystemParams(n=256, beta=0.09, seed=0)
        scheme = PuzzleScheme(OracleSuite(0), epoch_length=512)
        reg = IdentityRegistry(scheme, n=256, beta=params.effective_beta())
        ms = reg.mint_epoch(1, np.random.default_rng(0))
        # with beta/3 and the 1.5x window, realized fraction ~ beta/2 < beta
        assert ms.beta_realized < params.beta
