"""Integration: ``repro dispatch serve/work/collect`` across OS processes.

The acceptance scenario for the sharded dispatcher: the sweep is served
into a filesystem spool by one process, executed by separate worker
processes (one of which is hard-killed mid-unit), collected by another,
and the reassembled table is byte-identical to an in-process
``run_experiment`` — then a warm re-serve against the result cache
enqueues zero units.
"""

import json
import os
import pathlib
import subprocess
import sys
import time

import pytest

from repro.experiments.runner import run_experiment

OVERRIDES = ["--set", "n_values=[128,256]", "--set", "probes=400",
             "--set", 'topologies=["chord"]']
OVERRIDE_KWARGS = dict(n_values=[128, 256], probes=400, topologies=["chord"])


def repro_cli(*args, check=True, timeout=120):
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, timeout=timeout,
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            f"repro {' '.join(args)} -> {proc.returncode}\n"
            f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
        )
    return proc


@pytest.fixture
def spool(tmp_path):
    return tmp_path / "spool"


def test_serve_work_collect_round_trip_with_worker_kill(tmp_path, spool):
    cache_dir = tmp_path / "cache"
    out = repro_cli(
        "--seed", "3", "dispatch", "serve", "E1", *OVERRIDES,
        "--spool", str(spool), "--lease-timeout", "1",
        "--cache-dir", str(cache_dir),
    )
    assert "units enqueued" in out.stdout

    # worker A: a separate OS process, hard-killed mid-unit — its lease
    # dangles until the timeout
    killed = repro_cli(
        "dispatch", "work", "--spool", str(spool), "--worker", "wA",
        "--chaos", "kill:1", check=False,
    )
    assert killed.returncode == 17
    assert list((spool / "leased").glob("unit-*.json")), "no dangling lease?"

    time.sleep(1.1)  # let the dangling lease expire

    # worker B: another OS process; requeues the expired lease and drains
    repro_cli(
        "dispatch", "work", "--spool", str(spool), "--worker", "wB",
        "--timeout", "60",
    )

    collected = repro_cli(
        "dispatch", "collect", "--spool", str(spool),
        "--cache-dir", str(cache_dir),
    )
    oracle = run_experiment("E1", seed=3, fast=True, **OVERRIDE_KWARGS)
    assert collected.stdout.strip() == oracle.render().strip()

    # warm re-serve into a fresh spool: table-level cache hit, zero units
    spool2 = tmp_path / "spool2"
    warm = repro_cli(
        "--seed", "3", "dispatch", "serve", "E1", *OVERRIDES,
        "--spool", str(spool2), "--cache-dir", str(cache_dir),
    )
    assert "cache hit" in warm.stdout and "0 of" in warm.stdout
    assert list((spool2 / "pending").glob("*.json")) == []
    warm_collect = repro_cli("dispatch", "collect", "--spool", str(spool2))
    assert warm_collect.stdout.strip() == oracle.render().strip()


def test_collect_refuses_partial_table(spool):
    repro_cli(
        "--seed", "1", "dispatch", "serve", "E1", *OVERRIDES,
        "--spool", str(spool),
    )
    # one worker does one unit, then stops; collect must refuse loudly
    repro_cli("dispatch", "work", "--spool", str(spool), "--max-units", "1")
    proc = repro_cli("dispatch", "collect", "--spool", str(spool), check=False)
    assert proc.returncode == 1
    assert "incomplete" in proc.stderr and "missing" in proc.stderr
    assert proc.stdout.strip() == ""  # never a silent partial table


def test_reserve_existing_spool_only_fills_gaps(spool):
    repro_cli(
        "--seed", "1", "dispatch", "serve", "E1", *OVERRIDES,
        "--spool", str(spool),
    )
    repro_cli("dispatch", "work", "--spool", str(spool), "--max-units", "1")
    out = repro_cli(
        "--seed", "1", "dispatch", "serve", "E1", *OVERRIDES,
        "--spool", str(spool),
    )
    # 2 cells total, 1 completed: the re-serve enqueues nothing new
    # (the completed shard is a spool-level cache hit)
    assert "0 of 2 units enqueued" in out.stdout


def test_serve_rejects_typo_overrides(spool):
    proc = repro_cli(
        "dispatch", "serve", "E1", "--set", "probez=5",
        "--spool", str(spool), check=False,
    )
    assert proc.returncode != 0
    assert "probez" in (proc.stderr + proc.stdout)


def test_quorum_serve_work_collect_outvotes_equivocator(tmp_path, spool):
    # quorum round trip across OS processes: r=3, one worker whose every
    # answer is a plausible hash-consistent lie; the honest majority must
    # outvote it and the collected table must match the serial oracle
    out = repro_cli(
        "--seed", "2", "dispatch", "serve", "E1", *OVERRIDES,
        "--spool", str(spool), "--replicas", "3", "--max-attempts", "8",
        "--lease-timeout", "30",
    )
    assert "x3 replicas" in out.stdout
    manifest = json.loads((spool / "manifest.json").read_text())
    assert manifest["replicas"] == 3
    assert manifest["max_attempts"] == 8
    # 2 cells x 3 replicas staged as slots
    assert len(list((spool / "pending").glob("unit-*.json"))) == 6

    # the liar votes on both units, then two honest workers in sequence
    # provide the two distinct votes each index needs to settle
    repro_cli(
        "dispatch", "work", "--spool", str(spool), "--worker", "wLiar",
        "--chaos", "equivocate:1", "--max-units", "2",
    )
    repro_cli(
        "dispatch", "work", "--spool", str(spool), "--worker", "wB",
        "--max-units", "4",
    )
    repro_cli(
        "dispatch", "work", "--spool", str(spool), "--worker", "wC",
        "--timeout", "60",
    )
    collected = repro_cli("dispatch", "collect", "--spool", str(spool))
    oracle = run_experiment("E1", seed=2, fast=True, **OVERRIDE_KWARGS)
    assert collected.stdout.strip() == oracle.render().strip()

    from repro.telemetry import read_events

    events = read_events(spool / "events.log")
    settled = {
        e["index"] for e in events
        if e["type"] == "dispatch.quorum" and e["outcome"] == "settled"
    }
    assert settled == {0, 1}  # every index settled by majority vote


def test_manifest_records_the_request(spool):
    repro_cli(
        "--seed", "9", "dispatch", "serve", "E1", *OVERRIDES,
        "--spool", str(spool), "--lease-timeout", "7",
    )
    manifest = json.loads((spool / "manifest.json").read_text())
    assert manifest["experiment"] == "E1"
    assert manifest["seed"] == 9
    assert manifest["lease_timeout"] == 7.0
    assert manifest["overrides"]["probes"] == 400
    assert manifest["n_cells"] == 2
